// Command fsexp regenerates the paper's tables and figures (see DESIGN.md
// for the experiment index). With no arguments it runs the three primary
// experiments (Fig 2, Fig 14, Fig 15); -all runs everything; -exp selects a
// single experiment by ID.
//
// Simulations fan out across a worker pool (-j, default all CPUs) with
// results memoized per (benchmark, options) cell, so reference runs shared
// by several tables are simulated once. Every simulation is deterministic,
// so the emitted tables are byte-identical for any -j; -j 1 reproduces the
// historical serial harness exactly.
//
// Usage:
//
//	fsexp                 # primary results
//	fsexp -all            # every experiment
//	fsexp -all -j 8       # fan out on 8 workers
//	fsexp -exp fig17      # one experiment
//	fsexp -all -markdown  # emit EXPERIMENTS.md-style markdown
//	fsexp -all -v         # per-cell timing on stderr
//	fsexp -engine naive   # cycle-stepped reference engine (byte-identical)
//	fsexp -cpuprofile cpu.out -memprofile mem.out  # pprof the sweep
//
// Crash resilience: -journal records every completed cell to a JSONL
// campaign journal; -resume primes them back so an interrupted sweep only
// reruns unfinished work. -timeout/-retries/-backoff supervise each cell (a
// hung or panicking configuration is retried, then recorded as failed
// without killing the campaign), and -checkpoint-dir gives compatible cells
// a warm-state cache to resume mid-run:
//
//	fsexp -all -journal camp.jsonl -resume camp.jsonl -checkpoint-dir .ckpt \
//	      -timeout 10m -retries 2 -backoff 2s
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"fscoherence"
	"fscoherence/internal/obs"
	"fscoherence/internal/profiling"
	"fscoherence/internal/sample"
	"fscoherence/internal/stats"
)

func main() {
	var (
		all      = flag.Bool("all", false, "run every experiment")
		engine   = flag.String("engine", "skip", "simulation engine: skip (quiescence-skipping, default) | naive (cycle-stepped reference) | parallel (conservative parallel)")
		cores    = flag.Int("cores", 0, "scale the machine to this many cores (0 = Table II 8-core default; up to 256)")
		topology = flag.String("topology", "", "interconnect: flat (default) | ring | mesh")
		shards   = flag.Int("shards", 0, "parallel engine worker count (0 = one per 8 cores)")
		exp      = flag.String("exp", "", "run a single experiment by ID (fig2, fig13, ...)")
		scale    = flag.Float64("scale", 1.0, "workload size multiplier")
		jobs     = flag.Int("j", runtime.NumCPU(), "max concurrent simulations (1 = serial)")
		verbose  = flag.Bool("v", false, "report each simulation cell's timing on stderr")
		progress = flag.String("progress", "", "stream JSONL progress records (one per cell) to this file; - for stderr")
		markdown = flag.Bool("markdown", false, "emit markdown tables")
		csv      = flag.Bool("csv", false, "emit CSV (artifact format)")
		outDir   = flag.String("out", "", "also write one CSV per experiment into this directory")
		listExp  = flag.Bool("list", false, "list experiment IDs")
		table2   = flag.Bool("config", false, "print the simulated system configuration (Table II)")
		table3   = flag.Bool("benchmarks", false, "print the benchmark list (Table III)")
		traceOut = flag.String("trace", "", "write a Chrome trace of one instrumented cell (-trace-bench under -trace-protocol)")
		metrics  = flag.String("metrics", "", "write interval metrics CSV of the instrumented cell")
		filter   = flag.String("trace-filter", "", "restrict traced events: addr=0x...,core=N,class=net|prv|...")
		trBench  = flag.String("trace-bench", "LR", "benchmark for the instrumented cell")
		trProto  = flag.String("trace-protocol", "fslite", "protocol for the instrumented cell")
		sampled  = flag.String("sample", "", "interval sampling spec detailed:warming in committed accesses (e.g. 50k:950k); timing metrics become estimates with 95% CIs")
		journal  = flag.String("journal", "", "append one JSONL record per completed/failed cell to this campaign journal")
		resume   = flag.String("resume", "", "prime completed cells from this campaign journal (usually the same file as -journal) so only unfinished work reruns")
		timeout  = flag.Duration("timeout", 0, "per-attempt wall-clock watchdog for each cell (0 = none)")
		retries  = flag.Int("retries", 0, "additional attempts after a cell fails, panics or times out")
		backoff  = flag.Duration("backoff", 0, "base retry delay, doubled per attempt with deterministic jitter")
		ckptDir  = flag.String("checkpoint-dir", "", "warm-state cache directory: compatible cells checkpoint into it and auto-resume after a crash")
		ckptN    = flag.String("checkpoint-every", "", "checkpoint cadence in committed L1D accesses for -checkpoint-dir (e.g. 1m; default 1m)")
	)
	prof := profiling.AddFlags()
	flag.Parse()
	if *engine != "skip" && *engine != "naive" && *engine != "parallel" {
		fmt.Fprintf(os.Stderr, "fsexp: unknown -engine %q (want skip, naive or parallel)\n", *engine)
		os.Exit(1)
	}
	if *sampled != "" {
		if _, err := sample.ParseSpec(*sampled); err != nil {
			fmt.Fprintln(os.Stderr, "fsexp:", err)
			os.Exit(1)
		}
		if *engine != "skip" {
			fmt.Fprintf(os.Stderr, "fsexp: -sample requires the skip engine, not -engine=%s\n", *engine)
			os.Exit(1)
		}
	}
	if err := prof.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "fsexp:", err)
		os.Exit(1)
	}
	defer prof.Stop()

	if *listExp {
		for _, e := range fscoherence.Experiments {
			fmt.Printf("%-10s %s\n", e.ID, e.Note)
		}
		return
	}
	if *table2 {
		printConfig()
		return
	}
	if *table3 {
		printBenchmarks()
		return
	}

	selected := map[string]bool{}
	switch {
	case *exp != "":
		selected[*exp] = true
	case *all:
		for _, e := range fscoherence.Experiments {
			selected[e.ID] = true
		}
	default:
		selected["fig2"], selected["fig14a"], selected["fig14b"], selected["fig15"] = true, true, true, true
	}

	// One engine for the whole invocation: cells shared between tables
	// (e.g. every Baseline reference run) are simulated exactly once.
	eng := fscoherence.NewRunner(*jobs)
	eng.SetEngine(*engine)
	eng.SetMachine(*cores, *topology, *shards)
	eng.SetSample(*sampled)
	if *timeout > 0 || *retries > 0 || *backoff > 0 {
		eng.SetSupervision(*timeout, *retries, *backoff)
	}
	if *ckptDir != "" {
		var every uint64
		if *ckptN != "" {
			n, err := sample.ParseCount(*ckptN)
			if err != nil {
				fmt.Fprintln(os.Stderr, "fsexp: -checkpoint-every:", err)
				os.Exit(1)
			}
			every = n
		}
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "fsexp:", err)
			os.Exit(1)
		}
		eng.SetCheckpointDir(*ckptDir, every)
	}
	// Resume before attaching the journal: priming reads the prior campaign's
	// records, then new records append to the same file.
	if *resume != "" {
		primed, err := eng.ResumeJournal(*resume)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fsexp:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "[resume: %d completed cell(s) primed from %s]\n", primed, *resume)
	}
	if *journal != "" {
		j, err := fscoherence.OpenJournal(*journal)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fsexp:", err)
			os.Exit(1)
		}
		defer j.Close()
		eng.SetJournal(j)
	}
	if *progress != "" {
		w := os.Stderr
		if *progress != "-" {
			fh, err := os.Create(*progress)
			if err != nil {
				fmt.Fprintln(os.Stderr, "fsexp:", err)
				os.Exit(1)
			}
			defer fh.Close()
			w = fh
		}
		eng.SetStream(w)
	}
	if *verbose {
		eng.SetProgress(func(bench string, opt fscoherence.Options, d time.Duration, err error) {
			status := ""
			if err != nil {
				status = " FAILED"
			}
			fmt.Fprintf(os.Stderr, "[cell %s/%v %v%s]\n", bench, opt.Protocol, d.Round(time.Millisecond), status)
		})
	}

	sweepStart := time.Now()
	ran, failed := 0, 0
	for _, e := range fscoherence.Experiments {
		if !selected[e.ID] {
			continue
		}
		ran++
		start := time.Now()
		t, err := genTable(eng, e.Gen, *scale)
		if err != nil {
			// A broken cell fails only its experiment; the sweep continues.
			failed++
			fmt.Fprintf(os.Stderr, "fsexp: %s failed: %v\n", e.ID, err)
			continue
		}
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "fsexp:", err)
				os.Exit(1)
			}
			path := filepath.Join(*outDir, e.ID+".csv")
			if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "fsexp:", err)
				os.Exit(1)
			}
		}
		switch {
		case *csv:
			fmt.Print(t.CSV())
		case *markdown:
			fmt.Println(t.Markdown())
		default:
			fmt.Println(t.String())
		}
		fmt.Fprintf(os.Stderr, "[%s took %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "fsexp: no experiment matched %q (use -list)\n", *exp)
		os.Exit(1)
	}

	if *traceOut != "" || *metrics != "" {
		traceCell(eng, *trBench, *trProto, *scale, *traceOut, *metrics, *filter)
	}

	eng.Wait()
	printSampledCells(eng)
	rep := eng.Report()
	primed := ""
	if rep.Primed > 0 {
		primed = fmt.Sprintf(", %d primed from journal", rep.Primed)
	}
	fmt.Fprintf(os.Stderr, "[sweep: %d cells simulated, %d served from cache%s, sim time %v, wall %v, -j %d]\n",
		rep.Executed, rep.MemoHits, primed, rep.TaskTime.Round(time.Millisecond),
		time.Since(sweepStart).Round(time.Millisecond), eng.Workers())
	if m := rep.Metrics; len(m) > 0 {
		fmt.Fprintf(os.Stderr, "[sweep metrics: %d runs, %d total cycles (max cell %d), %d detections, %d contended lines]\n",
			m["runs"], m["cycles"], m["cycles.max.peak"], m["detections"], m["contended"])
	}
	if err := prof.Stop(); err != nil {
		fmt.Fprintln(os.Stderr, "fsexp:", err)
		os.Exit(1)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "fsexp: %d experiment(s) failed\n", failed)
		os.Exit(1)
	}
}

// printSampledCells emits the estimate table for every cell that ran under
// interval sampling: the tables above show the rounded point estimates, this
// section carries the confidence intervals and detail coverage.
func printSampledCells(eng *fscoherence.Runner) {
	cells := eng.SampledCells()
	if len(cells) == 0 {
		return
	}
	fmt.Println("Sampled estimates (95% CI)")
	fmt.Printf("%-6s %-9s %-8s %8s %8s %22s %22s %16s %20s\n",
		"BENCH", "PROTOCOL", "VARIANT", "WINDOWS", "DETAIL%", "CYCLES", "STALL CYCLES", "NET MSGS", "NET BYTES")
	col := func(s *fscoherence.SampledRun, name string) string {
		return s.Estimates[name].String()
	}
	for _, r := range cells {
		s := r.Sampled
		fmt.Printf("%-6s %-9v %-8v %8d %7.2f%% %22s %22s %16s %20s\n",
			r.Benchmark, r.Protocol, r.Variant, s.Windows,
			100*float64(s.Detailed)/float64(s.Accesses),
			col(s, stats.CtrCycles), col(s, stats.CtrStallCycles),
			col(s, stats.CtrNetMessages), col(s, stats.CtrNetBytes))
	}
	fmt.Println()
}

// traceCell runs one extra instrumented cell on the engine and exports its
// trace and metrics. The cell's Options carry the Obs pointer, so it is a
// distinct memo key and always executes (with deterministic results, the
// trace is byte-identical for any -j).
func traceCell(eng *fscoherence.Runner, bench, protocol string, scale float64, traceOut, metricsOut, filterSpec string) {
	var p fscoherence.Protocol
	switch strings.ToLower(protocol) {
	case "baseline", "mesi":
		p = fscoherence.Baseline
	case "fsdetect", "detect":
		p = fscoherence.FSDetect
	case "fslite", "lite":
		p = fscoherence.FSLite
	case "hybrid":
		p = fscoherence.Hybrid
	default:
		fmt.Fprintf(os.Stderr, "fsexp: unknown -trace-protocol %q\n", protocol)
		os.Exit(1)
	}
	f, err := obs.ParseFilter(filterSpec, fscoherence.DefaultBlockSize())
	if err != nil {
		fmt.Fprintln(os.Stderr, "fsexp:", err)
		os.Exit(1)
	}
	o := obs.New(obs.Config{Filter: f})
	if _, err := eng.Run(bench, fscoherence.Options{Protocol: p, Scale: scale, Obs: o}); err != nil {
		fmt.Fprintln(os.Stderr, "fsexp:", err)
		os.Exit(1)
	}
	write := func(path string, fn func(*os.File) error) {
		if path == "" {
			return
		}
		fh, err := os.Create(path)
		if err == nil {
			err = fn(fh)
		}
		if cerr := fh.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "fsexp:", err)
			os.Exit(1)
		}
	}
	write(traceOut, func(fh *os.File) error { return obs.WriteChromeTrace(fh, o.Tracer.Events()) })
	write(metricsOut, func(fh *os.File) error { return o.Metrics.WriteCSV(fh) })
	fmt.Fprintf(os.Stderr, "[traced %s/%s: %d events]\n", bench, protocol, o.Tracer.Total())
}

// genTable runs one table builder, converting a failed cell's panic
// (Future.Must) into an error so the remaining experiments still run.
func genTable(r *fscoherence.Runner, gen func(*fscoherence.Runner, float64) *fscoherence.Table, scale float64) (t *fscoherence.Table, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("%v", rec)
		}
	}()
	return gen(r, scale), nil
}

func printConfig() {
	fmt.Println("Table II — simulated system configuration")
	fmt.Println("  cores            8 (in-order; 8-wide OOO for the -exp ooo study)")
	fmt.Println("  L1D              32 KB per core, 8-way, 64 B lines, 3-cycle data access")
	fmt.Println("  LLC              8 slices, 16-way, inclusive, 2-cycle tag + 8-cycle data")
	fmt.Println("  interconnect     12-cycle base latency, per-class virtual-channel FIFO")
	fmt.Println("  memory           120-cycle access latency")
	fmt.Println("  PAM table        per-core, 1 entry per L1D line, R/W bit per byte + SEND_MD")
	fmt.Println("  SAM table        128 entries per slice, 16-way LRU, per-byte last writer + readers + TS")
	fmt.Println("  directory ext    7-bit FC and IC, PMMC, 2-bit hysteresis counter")
	fmt.Println("  conflict check   2 cycles per PRV check")
	fmt.Println("  thresholds       tauP = tauR1 = 16, tauR2 = 127")
}

func printBenchmarks() {
	fmt.Println("Table III — benchmark applications")
	for _, b := range fscoherence.Benchmarks() {
		fs := "no false sharing"
		if b.FalseSharing {
			fs = "false sharing"
		}
		fmt.Printf("  %-5s %-24s %-14s %d threads, %s\n", b.Name, b.Full, b.Suite, b.Threads, fs)
	}
}
