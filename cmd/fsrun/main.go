// Command fsrun executes one workload model under a chosen protocol and
// prints cycle counts, cache statistics, FSDetect's report and the modelled
// energy. With -compare it runs Baseline, FSDetect and FSLite back to back
// and prints speedups.
//
// With -compare the three protocol runs fan out on the experiment engine
// (-j workers, default all CPUs); results are deterministic for any -j.
//
// Observability: -trace writes the run's event stream as Chrome trace-event
// JSON (open in Perfetto / chrome://tracing), -metrics writes interval
// counter snapshots and histograms as CSV, -trace-filter restricts recorded
// events ("addr=0x10040,core=1,class=net|prv").
//
// Usage:
//
//	fsrun -bench RC -protocol fslite
//	fsrun -bench LR -mode fslite -trace out.json -metrics out.csv
//	fsrun -bench RC -compare
//	fsrun -bench RC -compare -j 3
//	fsrun -bench RC -engine naive               # cycle-stepped reference
//	fsrun -bench RC -cpuprofile cpu.out         # pprof the run
//	fsrun -bench RC -compare -counters          # line-comparable counter dump
//	fsrun -bench RC -checkpoint run.ckpt -checkpoint-every 500k  # crash-resilient run
//	fsrun -bench RC -resume run.ckpt -checkpoint-every 500k      # continue after a crash
//	fsrun -list
//	fsrun -counter-table
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"

	"fscoherence"
	"fscoherence/internal/obs"
	"fscoherence/internal/profiling"
	"fscoherence/internal/sample"
	"fscoherence/internal/stats"
)

func main() {
	var (
		bench    = flag.String("bench", "RC", "benchmark code (see -list)")
		protocol = flag.String("protocol", "baseline", "baseline | fsdetect | fslite | hybrid")
		mode     = flag.String("mode", "", "alias for -protocol")
		variant  = flag.String("variant", "default", "default | padded | huron")
		scale    = flag.Float64("scale", 1.0, "workload size multiplier")
		jobs     = flag.Int("j", runtime.NumCPU(), "max concurrent simulations for -compare (1 = serial)")
		compare  = flag.Bool("compare", false, "run all three protocols and print speedups")
		verify   = flag.Bool("verify", false, "enable oracle and SWMR verification")
		list     = flag.Bool("list", false, "list available benchmarks")
		full     = flag.Bool("stats", false, "dump all counters")
		traceOut = flag.String("trace", "", "write Chrome trace-event JSON to this file (open in Perfetto)")
		metrics  = flag.String("metrics", "", "write interval metrics CSV to this file")
		filter   = flag.String("trace-filter", "", "restrict traced events: addr=0x...,core=N,class=net|l1|dir|detect|prv|commit|oracle")
		counters = flag.Bool("counters", false, "after the run, dump every canonical counter (zeros included) in sorted order")
		ctrTable = flag.Bool("counter-table", false, "print the canonical counter-name documentation table and exit")
		engine   = flag.String("engine", "skip", "simulation engine: skip (quiescence-skipping, default) | naive (cycle-stepped reference) | parallel (conservative parallel)")
		cores    = flag.Int("cores", 0, "scale the machine to this many cores (0 = Table II 8-core default; up to 256)")
		topology = flag.String("topology", "", "interconnect: flat (default) | ring | mesh")
		shards   = flag.Int("shards", 0, "parallel engine worker count (0 = one per 8 cores)")
		sampled  = flag.String("sample", "", "interval sampling spec detailed:warming in committed accesses (e.g. 50k:950k); timing metrics become estimates with 95% CIs")
		ckpt     = flag.String("checkpoint", "", "write periodic checkpoints to this file (atomic; each boundary's write replaces the last)")
		ckptN    = flag.String("checkpoint-every", "", "checkpoint cadence in committed L1D accesses (e.g. 1m, 500k; default 1m when checkpointing)")
		resume   = flag.String("resume", "", "resume from this checkpoint file; corrupt or mismatched files fall back to a cold run with a warning")
	)
	prof := profiling.AddFlags()
	flag.Parse()
	if *mode != "" {
		*protocol = *mode
	}
	if *engine != "skip" && *engine != "naive" && *engine != "parallel" {
		fatal(fmt.Errorf("unknown -engine %q (want skip, naive or parallel)", *engine))
	}
	if err := prof.Start(); err != nil {
		fatal(err)
	}
	defer prof.Stop()

	if *ctrTable {
		fmt.Printf("| %-24s | %s |\n|%s|%s|\n", "Counter", "Meaning", strings.Repeat("-", 26), strings.Repeat("-", 60))
		for _, c := range stats.Canonical() {
			fmt.Printf("| %-24s | %s |\n", "`"+c.Name+"`", c.Desc)
		}
		return
	}

	if *list {
		fmt.Printf("%-5s %-22s %-12s %-8s %s\n", "CODE", "NAME", "SUITE", "THREADS", "FALSE SHARING")
		for _, b := range fscoherence.Benchmarks() {
			fs := "no"
			if b.FalseSharing {
				fs = "yes"
			}
			fmt.Printf("%-5s %-22s %-12s %-8d %s\n", b.Name, b.Full, b.Suite, b.Threads, fs)
		}
		return
	}

	v, err := parseVariant(*variant)
	if err != nil {
		fatal(err)
	}
	p, err := parseProtocol(*protocol)
	if err != nil {
		fatal(err)
	}
	o := buildObs(*traceOut, *metrics, *filter)

	var ctl fscoherence.RunControl
	if *ckpt != "" || *ckptN != "" || *resume != "" {
		if *compare {
			fatal(fmt.Errorf("-checkpoint/-resume apply to a single run; drop -compare"))
		}
		ctl.CheckpointPath = *ckpt
		ctl.Resume = *resume
		if *ckptN != "" {
			every, err := sample.ParseCount(*ckptN)
			if err != nil {
				fatal(fmt.Errorf("-checkpoint-every: %w", err))
			}
			ctl.CheckpointEvery = every
		}
	}

	if *compare {
		// The three protocol runs are independent cells: fan them out. The
		// observability attachment goes to the cell -protocol/-mode selects.
		obsFor := func(pr fscoherence.Protocol) *obs.Obs {
			if pr == p {
				return o
			}
			return nil
		}
		eng := fscoherence.NewRunner(*jobs)
		eng.SetEngine(*engine)
		eng.SetMachine(*cores, *topology, *shards)
		eng.SetSample(*sampled)
		baseF := eng.Submit(*bench, fscoherence.Options{Protocol: fscoherence.Baseline, Variant: v, Scale: *scale, Verify: *verify, Obs: obsFor(fscoherence.Baseline)})
		detF := eng.Submit(*bench, fscoherence.Options{Protocol: fscoherence.FSDetect, Variant: v, Scale: *scale, Verify: *verify, Obs: obsFor(fscoherence.FSDetect)})
		fslF := eng.Submit(*bench, fscoherence.Options{Protocol: fscoherence.FSLite, Variant: v, Scale: *scale, Verify: *verify, Obs: obsFor(fscoherence.FSLite)})
		base, det, fsl := collect(baseF), collect(detF), collect(fslF)
		fmt.Printf("benchmark %s (%s layout, scale %.2f)\n\n", *bench, v, *scale)
		fmt.Printf("%-10s %12s %10s %10s %12s %14s\n", "PROTOCOL", "CYCLES", "SPEEDUP", "L1D MISS", "NET MSGS", "ENERGY (norm)")
		for _, r := range []*fscoherence.Result{base, det, fsl} {
			fmt.Printf("%-10v %12d %10.3f %9.2f%% %12d %14.3f\n",
				r.Protocol, r.Cycles, r.Speedup(base), 100*r.MissFraction,
				r.Stats.Get("net.messages"), r.NormalizedEnergy(base))
		}
		printDetections(fsl)
		printSampled([]*fscoherence.Result{base, det, fsl})
		if *counters {
			printCounterColumns([]*fscoherence.Result{base, det, fsl})
		}
		writeObs(o, *traceOut, *metrics)
		return
	}

	r := run(*bench, fscoherence.Options{Protocol: p, Variant: v, Scale: *scale, Verify: *verify, Engine: *engine,
		Cores: *cores, Topology: *topology, Shards: *shards, Obs: o, Sample: *sampled}, ctl)
	writeObs(o, *traceOut, *metrics)
	fmt.Printf("benchmark %s under %v (%s layout)\n", *bench, p, v)
	if s := r.Sampled; s != nil {
		cyc := s.Estimates[stats.CtrCycles]
		fmt.Printf("cycles          %.0f ± %.0f (95%% CI, coverage %.2f%%, %d windows)\n",
			cyc.Mean, cyc.CI95, 100*cyc.Coverage, s.Windows)
	} else {
		fmt.Printf("cycles          %d\n", r.Cycles)
	}
	fmt.Printf("l1d accesses    %d\n", r.Stats.Get("l1d.accesses"))
	fmt.Printf("l1d miss        %.2f%%\n", 100*r.MissFraction)
	fmt.Printf("net messages    %d (%d bytes)\n", r.Stats.Get("net.messages"), r.Stats.Get("net.bytes"))
	fmt.Printf("invalidations   %d, interventions %d\n", r.Stats.Get("dir.invalidations"), r.Stats.Get("dir.interventions"))
	fmt.Printf("privatizations  %d, terminations %d\n", r.Stats.Get("fs.privatizations"), r.Stats.Get("fs.terminations"))
	fmt.Printf("energy          %.0f\n", r.Energy)
	printDetections(r)
	printSampled([]*fscoherence.Result{r})
	if *counters {
		printCounterColumns([]*fscoherence.Result{r})
	}
	if *full {
		fmt.Println("\ncounters:")
		fmt.Print(r.Stats.String())
	}
}

// printSampled dumps the estimate table of every interval-sampled result:
// one row per timing-domain metric with its 95% confidence interval.
// Functionally-accrued counters are exact and do not appear here.
func printSampled(rs []*fscoherence.Result) {
	for _, r := range rs {
		s := r.Sampled
		if s == nil {
			continue
		}
		fmt.Printf("\nsampled estimates under %v (95%% CI; sample %s, %d windows, %d/%d accesses detailed):\n",
			r.Protocol, s.Spec, s.Windows, s.Detailed, s.Accesses)
		names := make([]string, 0, len(s.Estimates))
		for n := range s.Estimates {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			est := s.Estimates[n]
			fmt.Printf("  %-18s %18s  (±%.2f%%)\n", n, est.String(), 100*est.RelCI())
		}
	}
}

// printCounterColumns dumps every canonical counter — zeros included — in
// sorted name order, one column per result. The fixed name set and ordering
// make two dumps line-comparable: `diff` or `paste` aligns counter-for-
// counter across runs, protocols and engines.
func printCounterColumns(rs []*fscoherence.Result) {
	names := make([]string, 0, len(stats.Canonical()))
	for _, c := range stats.Canonical() {
		names = append(names, c.Name)
	}
	sort.Strings(names)
	fmt.Println("\ncounters (canonical, sorted, zeros included):")
	for _, n := range names {
		fmt.Printf("%-24s", n)
		for _, r := range rs {
			fmt.Printf(" %12d", r.Stats.Get(n))
		}
		fmt.Println()
	}
}

// buildObs assembles the observability attachment requested by the -trace /
// -metrics / -trace-filter flags, or nil when neither output is wanted.
func buildObs(traceOut, metricsOut, filterSpec string) *obs.Obs {
	if traceOut == "" && metricsOut == "" {
		return nil
	}
	f, err := obs.ParseFilter(filterSpec, fscoherence.DefaultBlockSize())
	if err != nil {
		fatal(err)
	}
	return obs.New(obs.Config{Filter: f})
}

// writeObs exports the trace and metrics files after a run.
func writeObs(o *obs.Obs, traceOut, metricsOut string) {
	if o == nil {
		return
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			fatal(err)
		}
		if err := obs.WriteChromeTrace(f, o.Tracer.Events()); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "[trace: %d events -> %s (%d seen, %d dropped); open in Perfetto]\n",
			len(o.Tracer.Events()), traceOut, o.Tracer.Total(), o.Tracer.Dropped())
	}
	if metricsOut != "" {
		f, err := os.Create(metricsOut)
		if err != nil {
			fatal(err)
		}
		if err := o.Metrics.WriteCSV(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "[metrics: %d samples, %d histograms -> %s]\n",
			len(o.Metrics.Samples()), len(o.Metrics.Histograms()), metricsOut)
	}
}

func run(bench string, opt fscoherence.Options, ctl fscoherence.RunControl) *fscoherence.Result {
	r, err := fscoherence.RunControlled(bench, opt, ctl)
	if err != nil {
		fatal(err)
	}
	for _, w := range r.Warnings {
		fmt.Fprintln(os.Stderr, "fsrun: warning:", w)
	}
	return checked(r)
}

// collect waits for a submitted cell and applies the same fatal-error and
// verification policy as a direct run.
func collect(f *fscoherence.Future) *fscoherence.Result {
	r, err := f.Result()
	if err != nil {
		fatal(err)
	}
	return checked(r)
}

func checked(r *fscoherence.Result) *fscoherence.Result {
	if len(r.Violations) > 0 {
		fatal(fmt.Errorf("verification failed: %s", strings.Join(r.Violations, "; ")))
	}
	return r
}

func printDetections(r *fscoherence.Result) {
	if len(r.Detections) == 0 {
		return
	}
	fmt.Printf("\ndetected falsely shared lines (%d):\n", len(r.Detections))
	for _, d := range r.Detections {
		fmt.Printf("  %v  episodes=%d writers=%v readers=%v (first at cycle %d)\n",
			d.Addr, d.Episodes, d.Writers, d.Readers, d.Cycle)
	}
}

func parseProtocol(s string) (fscoherence.Protocol, error) {
	switch strings.ToLower(s) {
	case "baseline", "mesi":
		return fscoherence.Baseline, nil
	case "fsdetect", "detect":
		return fscoherence.FSDetect, nil
	case "fslite", "lite":
		return fscoherence.FSLite, nil
	case "hybrid":
		return fscoherence.Hybrid, nil
	}
	return 0, fmt.Errorf("unknown protocol %q", s)
}

func parseVariant(s string) (fscoherence.Variant, error) {
	switch strings.ToLower(s) {
	case "default", "":
		return fscoherence.LayoutDefault, nil
	case "padded", "manual":
		return fscoherence.LayoutPadded, nil
	case "huron":
		return fscoherence.LayoutHuron, nil
	}
	return 0, fmt.Errorf("unknown variant %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fsrun:", err)
	os.Exit(1)
}
