// Command fsrun executes one workload model under a chosen protocol and
// prints cycle counts, cache statistics, FSDetect's report and the modelled
// energy. With -compare it runs Baseline, FSDetect and FSLite back to back
// and prints speedups.
//
// With -compare the three protocol runs fan out on the experiment engine
// (-j workers, default all CPUs); results are deterministic for any -j.
//
// Usage:
//
//	fsrun -bench RC -protocol fslite
//	fsrun -bench RC -compare
//	fsrun -bench RC -compare -j 3
//	fsrun -list
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"fscoherence"
)

func main() {
	var (
		bench    = flag.String("bench", "RC", "benchmark code (see -list)")
		protocol = flag.String("protocol", "baseline", "baseline | fsdetect | fslite")
		variant  = flag.String("variant", "default", "default | padded | huron")
		scale    = flag.Float64("scale", 1.0, "workload size multiplier")
		jobs     = flag.Int("j", runtime.NumCPU(), "max concurrent simulations for -compare (1 = serial)")
		compare  = flag.Bool("compare", false, "run all three protocols and print speedups")
		verify   = flag.Bool("verify", false, "enable oracle and SWMR verification")
		list     = flag.Bool("list", false, "list available benchmarks")
		full     = flag.Bool("stats", false, "dump all counters")
	)
	flag.Parse()

	if *list {
		fmt.Printf("%-5s %-22s %-12s %-8s %s\n", "CODE", "NAME", "SUITE", "THREADS", "FALSE SHARING")
		for _, b := range fscoherence.Benchmarks() {
			fs := "no"
			if b.FalseSharing {
				fs = "yes"
			}
			fmt.Printf("%-5s %-22s %-12s %-8d %s\n", b.Name, b.Full, b.Suite, b.Threads, fs)
		}
		return
	}

	v, err := parseVariant(*variant)
	if err != nil {
		fatal(err)
	}

	if *compare {
		// The three protocol runs are independent cells: fan them out.
		eng := fscoherence.NewRunner(*jobs)
		baseF := eng.Submit(*bench, fscoherence.Options{Protocol: fscoherence.Baseline, Variant: v, Scale: *scale, Verify: *verify})
		detF := eng.Submit(*bench, fscoherence.Options{Protocol: fscoherence.FSDetect, Variant: v, Scale: *scale, Verify: *verify})
		fslF := eng.Submit(*bench, fscoherence.Options{Protocol: fscoherence.FSLite, Variant: v, Scale: *scale, Verify: *verify})
		base, det, fsl := collect(baseF), collect(detF), collect(fslF)
		fmt.Printf("benchmark %s (%s layout, scale %.2f)\n\n", *bench, v, *scale)
		fmt.Printf("%-10s %12s %10s %10s %12s %14s\n", "PROTOCOL", "CYCLES", "SPEEDUP", "L1D MISS", "NET MSGS", "ENERGY (norm)")
		for _, r := range []*fscoherence.Result{base, det, fsl} {
			fmt.Printf("%-10v %12d %10.3f %9.2f%% %12d %14.3f\n",
				r.Protocol, r.Cycles, r.Speedup(base), 100*r.MissFraction,
				r.Stats.Get("net.messages"), r.NormalizedEnergy(base))
		}
		printDetections(fsl)
		return
	}

	p, err := parseProtocol(*protocol)
	if err != nil {
		fatal(err)
	}
	r := run(*bench, fscoherence.Options{Protocol: p, Variant: v, Scale: *scale, Verify: *verify})
	fmt.Printf("benchmark %s under %v (%s layout)\n", *bench, p, v)
	fmt.Printf("cycles          %d\n", r.Cycles)
	fmt.Printf("l1d accesses    %d\n", r.Stats.Get("l1d.accesses"))
	fmt.Printf("l1d miss        %.2f%%\n", 100*r.MissFraction)
	fmt.Printf("net messages    %d (%d bytes)\n", r.Stats.Get("net.messages"), r.Stats.Get("net.bytes"))
	fmt.Printf("invalidations   %d, interventions %d\n", r.Stats.Get("dir.invalidations"), r.Stats.Get("dir.interventions"))
	fmt.Printf("privatizations  %d, terminations %d\n", r.Stats.Get("fs.privatizations"), r.Stats.Get("fs.terminations"))
	fmt.Printf("energy          %.0f\n", r.Energy)
	printDetections(r)
	if *full {
		fmt.Println("\ncounters:")
		fmt.Print(r.Stats.String())
	}
}

func run(bench string, opt fscoherence.Options) *fscoherence.Result {
	r, err := fscoherence.Run(bench, opt)
	if err != nil {
		fatal(err)
	}
	return checked(r)
}

// collect waits for a submitted cell and applies the same fatal-error and
// verification policy as a direct run.
func collect(f *fscoherence.Future) *fscoherence.Result {
	r, err := f.Result()
	if err != nil {
		fatal(err)
	}
	return checked(r)
}

func checked(r *fscoherence.Result) *fscoherence.Result {
	if len(r.Violations) > 0 {
		fatal(fmt.Errorf("verification failed: %s", strings.Join(r.Violations, "; ")))
	}
	return r
}

func printDetections(r *fscoherence.Result) {
	if len(r.Detections) == 0 {
		return
	}
	fmt.Printf("\ndetected falsely shared lines (%d):\n", len(r.Detections))
	for _, d := range r.Detections {
		fmt.Printf("  %v  episodes=%d writers=%v readers=%v (first at cycle %d)\n",
			d.Addr, d.Episodes, d.Writers, d.Readers, d.Cycle)
	}
}

func parseProtocol(s string) (fscoherence.Protocol, error) {
	switch strings.ToLower(s) {
	case "baseline", "mesi":
		return fscoherence.Baseline, nil
	case "fsdetect", "detect":
		return fscoherence.FSDetect, nil
	case "fslite", "lite":
		return fscoherence.FSLite, nil
	}
	return 0, fmt.Errorf("unknown protocol %q", s)
}

func parseVariant(s string) (fscoherence.Variant, error) {
	switch strings.ToLower(s) {
	case "default", "":
		return fscoherence.LayoutDefault, nil
	case "padded", "manual":
		return fscoherence.LayoutPadded, nil
	case "huron":
		return fscoherence.LayoutHuron, nil
	}
	return 0, fmt.Errorf("unknown variant %q", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fsrun:", err)
	os.Exit(1)
}
