// Command fsfuzz drives the protocol fuzzing and fault-injection harness
// (internal/fuzz): randomized adversarial workloads executed under latency
// jitter and message reordering, supervised by the full oracle stack
// (golden memory, SWMR, liveness watchdog, quiescence agreement, SC value
// check). See EXPERIMENTS.md §"Protocol fuzzing" and PROTOCOL.md.
//
// Modes:
//
//	fsfuzz -seeds 200                 # campaign: 200 seeds x 3 protocols
//	fsfuzz -seeds 50 -protocol fslite # restrict the protocol sweep
//	fsfuzz -replay repro.json         # re-execute a shrunk repro file
//	fsfuzz -replay repro.json -trace t.json   # ... with a Perfetto trace
//	fsfuzz -selfcheck                 # verify the oracles catch seeded bugs
//	fsfuzz -seeds 200 -progress fuzz.jsonl -resume fuzz.jsonl
//	                                  # crash-resilient campaign: rerun after an
//	                                  # interruption skips already-passed cases
//
// Every failure is shrunk to a minimal repro and written to -out as a JSON
// program file; the printed command line replays it. Exit status: 0 clean,
// 1 failures found (or a selfcheck oracle miss), 2 usage or I/O error.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"fscoherence/internal/fuzz"
	"fscoherence/internal/obs"
	"fscoherence/internal/sim"
)

func main() {
	var (
		seeds    = flag.Int("seeds", 200, "number of seeds in the campaign")
		start    = flag.Uint64("start", 1, "first seed of the campaign")
		seed     = flag.Uint64("seed", 0, "run exactly one seed (0 = full campaign)")
		protocol = flag.String("protocol", "all", "protocol sweep: all (default three), every (incl. hybrid), baseline, fsdetect, fslite or hybrid")
		replay   = flag.String("replay", "", "replay a repro program file instead of fuzzing")
		self     = flag.Bool("selfcheck", false, "verify the oracles detect seeded protocol bugs")
		out      = flag.String("out", "fuzz-repros", "directory for shrunk repro files")
		jobs     = flag.Int("jobs", 0, "concurrent executions (0 = GOMAXPROCS, capped at 8)")
		stall    = flag.Uint64("stall", 0, "watchdog stall threshold in cycles (0 = default)")
		budget   = flag.Int("shrink", 0, "shrinker execution budget per failure (0 = default)")
		traceOut = flag.String("trace", "", "replay only: write Chrome trace-event JSON (open in Perfetto)")
		progress = flag.String("progress", "", "stream JSONL progress records (one per case) to this file; - for stderr")
		resume   = flag.String("resume", "", "skip cases a prior campaign's -progress log records as passed (failed cases rerun); usually the same file as -progress")
	)
	flag.Parse()

	opt := fuzz.Options{StallCycles: *stall}
	switch {
	case *replay != "":
		os.Exit(doReplay(*replay, *traceOut, opt))
	case *self:
		os.Exit(selfcheck(opt, *budget))
	default:
		os.Exit(campaign(*seeds, *start, *seed, *protocol, *out, *jobs, *budget, *progress, *resume, opt))
	}
}

// loadCompleted reads a prior campaign's -progress JSONL log and returns the
// set of (seed, protocol) cases that completed without failure. Failed cases
// are NOT included — the crash may have preceded their shrunk repro, so they
// rerun. Torn or foreign lines (the record being written when the campaign
// died) are skipped.
func loadCompleted(path string) (map[string]bool, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil // no prior campaign: resume from nothing
		}
		return nil, err
	}
	defer f.Close()
	done := map[string]bool{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		var rec fuzz.CaseRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil || rec.Protocol == "" {
			continue
		}
		if rec.Failure == "" {
			done[fmt.Sprintf("%d/%s", rec.Seed, rec.Protocol)] = true
		}
	}
	return done, sc.Err()
}

// protocols resolves the -protocol flag to a sweep list.
func protocols(flag string) ([]string, error) {
	if flag == "all" {
		return fuzz.Protocols, nil
	}
	if flag == "every" {
		return fuzz.AllProtocols, nil
	}
	for _, p := range fuzz.AllProtocols {
		if p == flag {
			return []string{p}, nil
		}
	}
	return nil, fmt.Errorf("unknown protocol %q (want all, every, baseline, fsdetect, fslite or hybrid)", flag)
}

func campaign(seeds int, start, one uint64, protoFlag, out string, jobs, budget int, progress, resume string, opt fuzz.Options) int {
	protos, err := protocols(protoFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fsfuzz:", err)
		return 2
	}
	if one != 0 {
		start, seeds = one, 1
	}
	var completed map[string]bool
	if resume != "" {
		completed, err = loadCompleted(resume)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fsfuzz:", err)
			return 2
		}
	}
	var stream *os.File
	if progress == "-" {
		stream = os.Stderr
	} else if progress != "" {
		if progress == resume {
			// Resuming into the same log: append, so the records just loaded
			// survive for the next resume.
			stream, err = os.OpenFile(progress, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		} else {
			stream, err = os.Create(progress)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "fsfuzz:", err)
			return 2
		}
		defer stream.Close()
	}
	fmt.Printf("fuzzing %d seed(s) x %v with fault injection\n", seeds, protos)
	cfg := fuzz.CampaignConfig{
		StartSeed: start, Seeds: seeds, Protocols: protos,
		Opt: opt, Jobs: jobs, ShrinkBudget: budget,
		Log: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}
	if len(completed) > 0 {
		cfg.Skip = func(seed uint64, protocol string) bool {
			return completed[fmt.Sprintf("%d/%s", seed, protocol)]
		}
	}
	if stream != nil {
		cfg.Stream = stream
	}
	res := fuzz.Campaign(cfg)
	fmt.Printf("%d cases, %d simulated cycles, %d failure(s)\n",
		res.Cases, res.TotalCycles, len(res.Failures))
	if len(res.Failures) == 0 {
		return 0
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "fsfuzz:", err)
		return 2
	}
	for _, f := range res.Failures {
		path := filepath.Join(out, fmt.Sprintf("repro-seed%d-%s.json", f.Seed, f.Protocol))
		if err := os.WriteFile(path, f.Shrunk.Marshal(), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "fsfuzz:", err)
			return 2
		}
		fmt.Printf("\nFAIL seed=%d protocol=%s (%d shrink runs)\n  %v\n  repro: %s\n  replay: %s\n",
			f.Seed, f.Protocol, f.Runs, f.Failure, path, fuzz.ReproCommand(path))
	}
	return 1
}

// doReplay re-executes one repro file deterministically, optionally with the
// observability layer attached for a Perfetto trace of the failing run.
func doReplay(path, traceOut string, opt fuzz.Options) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fsfuzz:", err)
		return 2
	}
	p, err := fuzz.Unmarshal(data)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fsfuzz:", err)
		return 2
	}
	var o *obs.Obs
	if traceOut != "" {
		o = obs.New(obs.Config{})
		opt.Obs = func(cfg *sim.Config) { cfg.Obs = o }
	}
	fmt.Printf("replaying %s\n%s\n", path, p)
	out := fuzz.Execute(p, opt)
	if o != nil {
		f, err := os.Create(traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fsfuzz:", err)
			return 2
		}
		if err := obs.WriteChromeTrace(f, o.Tracer.Events()); err != nil {
			fmt.Fprintln(os.Stderr, "fsfuzz:", err)
			return 2
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "[trace: %d events -> %s; open in Perfetto]\n",
			len(o.Tracer.Events()), traceOut)
	}
	if out.Failure != nil {
		fmt.Printf("reproduced after %d cycles:\n%v\n", out.Cycles, out.Failure)
		return 1
	}
	fmt.Printf("clean: %d cycles, no oracle fired\n", out.Cycles)
	return 0
}

// selfcheck seeds known protocol bugs through the sabotage hook and demands
// every oracle in the stack catch its class: drops and wedges must trip the
// liveness watchdog, payload corruption the golden-memory oracle — and the
// shrinker must converge to a small repro. This validates the harness
// itself; `make fuzzsmoke` runs it in CI.
func selfcheck(opt fuzz.Options, budget int) int {
	if opt.StallCycles == 0 {
		opt.StallCycles = 20_000
	}
	cases := []struct {
		proto string
		sab   fuzz.SabotageSpec
		kinds []string
	}{
		{"baseline", fuzz.SabotageSpec{Mode: "drop", Op: "Data", Nth: 1}, []string{"stall", "deadlock"}},
		{"fsdetect", fuzz.SabotageSpec{Mode: "drop", Op: "InvAck", Nth: 1}, []string{"stall", "deadlock"}},
		{"fslite", fuzz.SabotageSpec{Mode: "drop", Op: "InvAck", Nth: 1}, []string{"stall", "deadlock"}},
		{"fslite", fuzz.SabotageSpec{Mode: "wedge", Op: "Data", Nth: 1}, []string{"stall"}},
		{"fslite", fuzz.SabotageSpec{Mode: "corrupt", Op: "Data", Nth: 5}, []string{"oracle"}},
	}
	bad := 0
	for _, tc := range cases {
		p := fuzz.Generate(42, tc.proto)
		if tc.sab.Mode == "corrupt" {
			p = fuzz.Generate(7, tc.proto)
		}
		sab := tc.sab
		p.Sabotage = &sab
		out := fuzz.Execute(p, opt)
		name := fmt.Sprintf("%s/%s %s #%d", tc.proto, sab.Mode, sab.Op, sab.Nth)
		if out.Failure == nil {
			fmt.Printf("MISS %s: seeded bug not detected\n", name)
			bad++
			continue
		}
		okKind := false
		for _, k := range tc.kinds {
			okKind = okKind || out.Failure.Kind == k
		}
		if !okKind {
			fmt.Printf("MISS %s: detected as %s, want one of %v\n", name, out.Failure.Kind, tc.kinds)
			bad++
			continue
		}
		sr := fuzz.Shrink(p, out.Failure.Kind, opt, budget)
		ops := 0
		for _, t := range sr.Program.Threads {
			ops += len(t)
		}
		fmt.Printf("ok   %s: %s, shrunk to %d thread(s)/%d op(s) in %d runs\n",
			name, out.Failure.Kind, len(sr.Program.Threads), ops, sr.Runs)
	}
	if bad > 0 {
		fmt.Printf("selfcheck: %d seeded bug(s) escaped the oracles\n", bad)
		return 1
	}
	fmt.Println("selfcheck: every seeded bug detected and shrunk")
	return 0
}
