package main

import (
	"fmt"
	"html/template"
	"io"
	"sort"
	"time"

	"fscoherence"
	"fscoherence/internal/forensics"
)

// The HTML report is the forensics counterpart of the textual/JSON report:
// a single self-contained file (inline CSS, no external assets) with
//
//   - per-line byte x core access heatmaps from the flight recorder,
//   - the decision timeline (detect, contended, privatize, abort,
//     terminate-with-cause) for each hot line,
//   - repair efficacy: invalidations and misses before vs. after the first
//     privatization of each repaired line,
//   - a detection-accuracy table (precision / recall / mean time to
//     detection against workload ground truth) across example workloads,
//   - a campaign summary for the sweep that produced the table.

// htmlLineCap bounds the per-line detail sections; htmlTimelineCap bounds
// decisions shown per line. Both exist to keep the report readable (and its
// size bounded) on pathological workloads; the caps are reported in-page.
const (
	htmlLineCap     = 8
	htmlTimelineCap = 48
)

// accuracyBenches is the example-workload set scored in the accuracy table.
// RC (refcount) and LL (lock-free list) are the paper's motivating examples;
// the micros pin the detector's corner cases; uTS is the true-sharing
// control that must stay at zero false positives.
var accuracyBenches = []string{"RC", "LL", "uWW", "uRW", "uPH", "uTS"}

type htmlData struct {
	Benchmark string
	Variant   string
	Scale     float64
	Generated string

	Rep report

	Lines        []htmlLine
	LinesDropped int
	BlockSize    int

	Accuracy []accuracyRow
	Campaign campaignRow
}

type htmlLine struct {
	Addr     string
	Label    string
	Reads    uint64
	Writes   uint64
	Cores    int
	Detected bool

	// Repair efficacy (meaningful when PrvEpisodes > 0).
	PrvEpisodes int
	PrvCycle    uint64
	InvBefore   uint64
	InvAfter    uint64
	MissBefore  uint64
	MissAfter   uint64
	AvgMissLatB float64
	AvgMissLatA float64

	Heat             []heatRow
	Timeline         []decisionRow
	TimelineDropped  int
	TimelineTotalLen int
}

type heatRow struct {
	Core  int
	Cells []heatCell
}

type heatCell struct {
	Style template.CSS
	Title string
}

type decisionRow struct {
	Cycle uint64
	Kind  string
	Core  string
	Cause string
	Arg   uint64
}

type accuracyRow struct {
	Bench     string
	Positives int
	TP        int
	FP        int
	FN        int
	Mixed     int
	Precision float64
	Recall    float64
	MeanTTD   float64
	Control   bool // no exercised positives: a true-sharing control row
	Pass      bool
}

type campaignRow struct {
	Cells    int
	MemoHits int
	Errors   int
	TaskTime string
	Workers  int
	Cycles   uint64
	Detects  uint64
}

// buildHTMLData assembles the full report model: the FSLite detail run's
// recorder (heatmaps, timelines, repair efficacy), the FSDetect accuracy
// sweep and the campaign summary.
func buildHTMLData(bench, variant string, v fscoherence.Variant, scale float64, rep report) (*htmlData, error) {
	d := &htmlData{
		Benchmark: bench,
		Variant:   variant,
		Scale:     scale,
		Generated: time.Now().UTC().Format(time.RFC3339),
		Rep:       rep,
	}

	// Detail run: the selected benchmark under FSLite with the flight
	// recorder attached, so the report shows repairs, not just detections.
	rec := forensics.New()
	res, err := fscoherence.Run(bench, fscoherence.Options{
		Protocol: fscoherence.FSLite, Variant: v, Scale: scale, Forensics: rec,
	})
	if err != nil {
		return nil, err
	}
	d.BlockSize = rec.BlockSize()
	d.Lines, d.LinesDropped = detailLines(rec, res.GroundTruth)

	// Accuracy sweep: FSDetect with a per-cell recorder across the example
	// workloads, scored against each workload's exported ground truth.
	eng := fscoherence.NewRunner(0)
	benches := accuracyBenches
	seen := false
	for _, b := range benches {
		seen = seen || b == bench
	}
	if !seen {
		benches = append(append([]string{}, benches...), bench)
	}
	recs := make([]*forensics.Recorder, len(benches))
	futs := make([]*fscoherence.Future, len(benches))
	for i, b := range benches {
		recs[i] = forensics.New()
		futs[i] = eng.Submit(b, fscoherence.Options{Protocol: fscoherence.FSDetect, Scale: scale, Forensics: recs[i]})
	}
	for i, b := range benches {
		r, err := futs[i].Result()
		if err != nil {
			return nil, fmt.Errorf("accuracy cell %s: %w", b, err)
		}
		acc := forensics.Score(recs[i], r.GroundTruth)
		row := accuracyRow{
			Bench: b, Positives: acc.Positives, TP: acc.TP, FP: acc.FP, FN: acc.FN,
			Mixed: acc.Mixed, Precision: acc.Precision, Recall: acc.Recall, MeanTTD: acc.MeanTTD,
			Control: acc.Positives == 0,
		}
		row.Pass = row.Control && acc.FP == 0 || !row.Control && acc.Recall >= 0.9 && acc.Precision >= 0.9
		d.Accuracy = append(d.Accuracy, row)
	}

	eng.Wait()
	er := eng.Report()
	d.Campaign = campaignRow{
		Cells: er.Executed, MemoHits: er.MemoHits, Errors: er.Errors,
		TaskTime: er.TaskTime.Round(time.Millisecond).String(), Workers: eng.Workers(),
		Cycles: er.Metrics["cycles"], Detects: er.Metrics["detections"],
	}
	return d, nil
}

// detailLines renders the recorder's hottest lines: every line that was
// detected or privatized first, then the busiest remainder, capped at
// htmlLineCap.
func detailLines(rec *forensics.Recorder, gt *forensics.GroundTruth) ([]htmlLine, int) {
	lines := rec.Lines()
	sort.SliceStable(lines, func(i, j int) bool {
		pi, pj := lineRank(lines[i]), lineRank(lines[j])
		if pi != pj {
			return pi > pj
		}
		return lines[i].Reads+lines[i].Writes > lines[j].Reads+lines[j].Writes
	})
	dropped := 0
	if len(lines) > htmlLineCap {
		dropped = len(lines) - htmlLineCap
		lines = lines[:htmlLineCap]
	}
	out := make([]htmlLine, 0, len(lines))
	for _, ln := range lines {
		_, det := ln.DetectCycle()
		h := htmlLine{
			Addr: ln.Addr.String(), Reads: ln.Reads, Writes: ln.Writes,
			Cores: len(ln.Cores()), Detected: det,
			PrvEpisodes: ln.PrvEpisodes, PrvCycle: ln.PrvCycle,
			InvBefore: ln.InvBefore, InvAfter: ln.InvAfter,
			MissBefore: ln.MissBefore, MissAfter: ln.MissAfter,
		}
		if gt != nil {
			h.Label = gt.Label(ln.Addr).String()
		}
		if ln.MissBefore > 0 {
			h.AvgMissLatB = float64(ln.MissCyclesBefore) / float64(ln.MissBefore)
		}
		if ln.MissAfter > 0 {
			h.AvgMissLatA = float64(ln.MissCyclesAfter) / float64(ln.MissAfter)
		}
		h.Heat = heatRows(ln, rec.BlockSize())
		h.Timeline, h.TimelineDropped = timelineRows(ln.Timeline)
		h.TimelineTotalLen = len(ln.Timeline)
		out = append(out, h)
	}
	return out, dropped
}

func lineRank(ln *forensics.Line) int {
	if ln.PrvEpisodes > 0 {
		return 2
	}
	if _, ok := ln.DetectCycle(); ok {
		return 1
	}
	return 0
}

// heatRows renders the byte x core access matrix as colored cells. Intensity
// is normalized per line so the layout of sharing within the line stands out
// regardless of absolute traffic.
func heatRows(ln *forensics.Line, blockSize int) []heatRow {
	var max uint64
	for _, c := range ln.Cores() {
		for _, n := range ln.Heat(c) {
			if n > max {
				max = n
			}
		}
	}
	if max == 0 {
		return nil
	}
	var rows []heatRow
	for _, c := range ln.Cores() {
		heat := ln.Heat(c)
		row := heatRow{Core: c, Cells: make([]heatCell, blockSize)}
		for b := 0; b < blockSize; b++ {
			var n uint64
			if b < len(heat) {
				n = heat[b]
			}
			alpha := float64(n) / float64(max)
			row.Cells[b] = heatCell{
				Style: template.CSS(fmt.Sprintf("background:rgba(196,49,75,%.3f)", alpha)),
				Title: fmt.Sprintf("core %d byte %d: %d accesses", c, b, n),
			}
		}
		rows = append(rows, row)
	}
	return rows
}

func timelineRows(ds []forensics.Decision) ([]decisionRow, int) {
	dropped := 0
	if len(ds) > htmlTimelineCap {
		// Keep the head and tail: the first decisions show detection, the
		// last ones show how the final episode ended.
		head := ds[:htmlTimelineCap/2]
		tail := ds[len(ds)-htmlTimelineCap/2:]
		dropped = len(ds) - len(head) - len(tail)
		ds = append(append([]forensics.Decision{}, head...), tail...)
	}
	out := make([]decisionRow, len(ds))
	for i, dec := range ds {
		core := "—"
		if dec.Core >= 0 {
			core = fmt.Sprintf("%d", dec.Core)
		}
		out[i] = decisionRow{Cycle: dec.Cycle, Kind: dec.Kind.String(), Core: core, Cause: dec.Cause, Arg: dec.Arg}
	}
	return out, dropped
}

var htmlTmpl = template.Must(template.New("report").Funcs(template.FuncMap{
	"pct": func(f float64) float64 { return 100 * f },
}).Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>False-sharing forensics — {{.Benchmark}}</title>
<style>
body { font: 14px/1.45 system-ui, sans-serif; margin: 2rem auto; max-width: 72rem; color: #1c2730; padding: 0 1rem; }
h1 { font-size: 1.5rem; } h2 { font-size: 1.15rem; margin-top: 2rem; border-bottom: 1px solid #d8dee4; padding-bottom: .25rem; }
h3 { font-size: 1rem; margin-bottom: .25rem; }
table { border-collapse: collapse; margin: .5rem 0 1rem; }
th, td { border: 1px solid #d8dee4; padding: .25rem .55rem; text-align: right; }
th { background: #f2f5f7; } td.l, th.l { text-align: left; }
.heat { border-collapse: collapse; } .heat td { border: 1px solid #eceff1; width: 11px; height: 14px; padding: 0; }
.heat th { border: none; background: none; font-weight: normal; font-size: 11px; padding-right: .4rem; }
.pass { color: #1e7e34; font-weight: 600; } .fail { color: #c4314b; font-weight: 600; }
.muted { color: #68767f; font-size: 12px; }
.badge { display: inline-block; font-size: 11px; padding: 0 .4rem; border-radius: 3px; background: #eceff1; margin-left: .4rem; }
code { background: #f2f5f7; padding: 0 .25rem; border-radius: 3px; }
</style>
</head>
<body>
<h1>False-sharing forensics — {{.Benchmark}} <span class="badge">{{.Variant}} layout</span> <span class="badge">scale {{printf "%.2f" .Scale}}</span></h1>
<p class="muted">Generated {{.Generated}}. FSDetect summary below; per-line detail from an FSLite run with the flight recorder attached.</p>

<h2>Run summary (FSDetect)</h2>
<table>
<tr><th class="l">Cycles</th><th class="l">Detection overhead</th><th class="l">L1D miss</th><th class="l">Invalidations</th><th class="l">Metadata msgs</th><th class="l">Falsely shared lines</th><th class="l">Contended (true-sharing) lines</th></tr>
<tr><td>{{.Rep.Cycles}}</td><td>{{printf "%.2f" .Rep.OverheadPct}}%</td><td>{{printf "%.2f" (pct .Rep.L1MissFraction)}}%</td><td>{{.Rep.Invalidations}}</td><td>{{.Rep.MetadataMsgs}}</td><td>{{len .Rep.Lines}}</td><td>{{len .Rep.Contended}}</td></tr>
</table>

<h2>Detection accuracy vs. ground truth</h2>
<p class="muted">Each workload generator exports byte-range labels (private / true sharing / false sharing). A positive is a falsely-shared line actually contended during the run (&ge;2 cores, &ge;1 write). Rows with no positives are true-sharing controls where any detection would be a false positive.</p>
<table>
<tr><th class="l">Workload</th><th>Positives</th><th>TP</th><th>FP</th><th>FN</th><th>Mixed</th><th>Precision</th><th>Recall</th><th>Mean TTD (cycles)</th><th class="l">Verdict</th></tr>
{{range .Accuracy}}<tr><td class="l"><code>{{.Bench}}</code></td><td>{{.Positives}}</td><td>{{.TP}}</td><td>{{.FP}}</td><td>{{.FN}}</td><td>{{.Mixed}}</td>
{{if .Control}}<td>—</td><td>—</td><td>—</td><td class="l">{{if .Pass}}<span class="pass">control clean</span>{{else}}<span class="fail">false positives</span>{{end}}</td>
{{else}}<td>{{printf "%.2f" .Precision}}</td><td>{{printf "%.2f" .Recall}}</td><td>{{printf "%.0f" .MeanTTD}}</td><td class="l">{{if .Pass}}<span class="pass">pass</span>{{else}}<span class="fail">below 0.9</span>{{end}}</td>{{end}}</tr>
{{end}}</table>

<h2>Per-line flight recorder ({{.Benchmark}} under FSLite)</h2>
{{if .LinesDropped}}<p class="muted">Showing the {{len .Lines}} highest-ranked lines; {{.LinesDropped}} quieter lines omitted.</p>{{end}}
{{range .Lines}}
<h3><code>{{.Addr}}</code> <span class="badge">{{.Label}}</span>{{if .Detected}} <span class="badge">detected</span>{{end}}{{if .PrvEpisodes}} <span class="badge">privatized ×{{.PrvEpisodes}}</span>{{end}}</h3>
<p class="muted">{{.Reads}} reads, {{.Writes}} writes across {{.Cores}} cores.</p>
{{if .Heat}}
<table class="heat">
{{range .Heat}}<tr><th>core {{.Core}}</th>{{range .Cells}}<td style="{{.Style}}" title="{{.Title}}"></td>{{end}}</tr>
{{end}}</table>
<p class="muted">Byte×core access heatmap, bytes 0–{{$.BlockSize}} left to right, intensity normalized per line.</p>
{{end}}
{{if .PrvEpisodes}}
<table>
<tr><th class="l">Repair efficacy</th><th>Invalidations</th><th>Misses</th><th>Avg miss latency</th></tr>
<tr><td class="l">before privatization (cycle {{.PrvCycle}})</td><td>{{.InvBefore}}</td><td>{{.MissBefore}}</td><td>{{printf "%.1f" .AvgMissLatB}}</td></tr>
<tr><td class="l">after privatization</td><td>{{.InvAfter}}</td><td>{{.MissAfter}}</td><td>{{printf "%.1f" .AvgMissLatA}}</td></tr>
</table>
{{end}}
{{if .Timeline}}
<table>
<tr><th>Cycle</th><th class="l">Decision</th><th>Core</th><th class="l">Cause</th><th>Arg</th></tr>
{{range .Timeline}}<tr><td>{{.Cycle}}</td><td class="l">{{.Kind}}</td><td>{{.Core}}</td><td class="l">{{.Cause}}</td><td>{{.Arg}}</td></tr>
{{end}}</table>
{{if .TimelineDropped}}<p class="muted">{{.TimelineDropped}} of {{.TimelineTotalLen}} decisions elided from the middle of the timeline.</p>{{end}}
{{end}}
{{end}}

<h2>Campaign summary</h2>
<table>
<tr><th>Cells simulated</th><th>Memo hits</th><th>Errors</th><th>Sim time</th><th>Workers</th><th>Total cycles</th><th>Detections</th></tr>
<tr><td>{{.Campaign.Cells}}</td><td>{{.Campaign.MemoHits}}</td><td>{{.Campaign.Errors}}</td><td>{{.Campaign.TaskTime}}</td><td>{{.Campaign.Workers}}</td><td>{{.Campaign.Cycles}}</td><td>{{.Campaign.Detects}}</td></tr>
</table>
<p class="muted">Produced by <code>fsreport -html</code>. The file is self-contained; share it as-is.</p>
</body>
</html>
`))

// writeHTML renders the report to w.
func writeHTML(w io.Writer, d *htmlData) error {
	return htmlTmpl.Execute(w, d)
}
