package main

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"fscoherence"
)

// TestReportSchemaRoundTrip builds a report from a real FSDetect run with the
// observability layer attached and checks that the JSON schema round-trips
// losslessly: encode -> decode -> re-encode yields an identical structure and
// identical bytes, and the observability-sourced fields are populated.
func TestReportSchemaRoundTrip(t *testing.T) {
	o := detectionObs()
	base, err := fscoherence.Run("LR", fscoherence.Options{Protocol: fscoherence.Baseline, Scale: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	det, err := fscoherence.Run("LR", fscoherence.Options{Protocol: fscoherence.FSDetect, Scale: 0.5, Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	rep := buildReport("LR", base, det)

	if len(rep.Lines) == 0 {
		t.Fatal("LR under FSDetect reported no falsely shared lines")
	}
	for _, l := range rep.Lines {
		if len(l.Timeline) == 0 {
			t.Errorf("line %s has no detection timeline", l.Address)
		}
		for _, te := range l.Timeline {
			if te.Event != "fs.detect" && te.Event != "fs.contended" {
				t.Errorf("line %s: unexpected timeline event %q", l.Address, te.Event)
			}
			if te.Cycle == 0 || te.Episode == 0 {
				t.Errorf("line %s: zero cycle/episode in %+v", l.Address, te)
			}
		}
	}
	if rep.MissLatency == nil {
		t.Fatal("report lacks the miss-latency histogram")
	}
	if rep.MissLatency.Count == 0 || len(rep.MissLatency.Buckets) == 0 {
		t.Fatalf("empty miss-latency histogram: %+v", rep.MissLatency)
	}
	var n uint64
	for _, b := range rep.MissLatency.Buckets {
		if b.Hi < b.Lo {
			t.Errorf("inverted bucket %+v", b)
		}
		n += b.Count
	}
	if n != rep.MissLatency.Count {
		t.Errorf("bucket counts sum to %d, want %d", n, rep.MissLatency.Count)
	}

	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back report
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, back) {
		t.Errorf("report does not round-trip:\n got %+v\nwant %+v", back, rep)
	}
	blob2, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Error("re-encoded report differs from first encoding")
	}
}
