// Command fsreport runs FSDetect on a workload and prints a detailed
// false-sharing report: the detected lines, the cores involved, episode
// counts and the supporting protocol statistics — the "detector as a
// diagnostics tool" use case of §II.
//
// Usage:
//
//	fsreport -bench LR
//	fsreport -bench LR -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"fscoherence"
)

// report is the JSON output schema.
type report struct {
	Benchmark      string      `json:"benchmark"`
	Cycles         uint64      `json:"cycles"`
	OverheadPct    float64     `json:"detection_overhead_pct"`
	L1MissFraction float64     `json:"l1d_miss_fraction"`
	Invalidations  uint64      `json:"invalidations"`
	Interventions  uint64      `json:"interventions"`
	MetadataMsgs   uint64      `json:"metadata_messages"`
	PhantomMsgs    uint64      `json:"phantom_messages"`
	Lines          []lineEntry `json:"falsely_shared_lines"`
	Contended      []lineEntry `json:"contended_lines"`
}

type lineEntry struct {
	Address    string `json:"address"`
	Writers    []int  `json:"writers"`
	Readers    []int  `json:"readers"`
	Episodes   int    `json:"episodes"`
	FirstCycle uint64 `json:"first_detected_cycle"`
}

func main() {
	var (
		bench   = flag.String("bench", "RC", "benchmark code (fsrun -list shows all)")
		scale   = flag.Float64("scale", 1.0, "workload size multiplier")
		asJSON  = flag.Bool("json", false, "emit machine-readable JSON")
		variant = flag.String("variant", "default", "default | padded | huron")
	)
	flag.Parse()

	v := fscoherence.LayoutDefault
	switch *variant {
	case "padded":
		v = fscoherence.LayoutPadded
	case "huron":
		v = fscoherence.LayoutHuron
	}

	base, err := fscoherence.Run(*bench, fscoherence.Options{Protocol: fscoherence.Baseline, Variant: v, Scale: *scale})
	if err != nil {
		fatal(err)
	}
	det, err := fscoherence.Run(*bench, fscoherence.Options{Protocol: fscoherence.FSDetect, Variant: v, Scale: *scale})
	if err != nil {
		fatal(err)
	}

	rep := report{
		Benchmark:      *bench,
		Cycles:         det.Cycles,
		OverheadPct:    100 * (float64(det.Cycles)/float64(base.Cycles) - 1),
		L1MissFraction: det.MissFraction,
		Invalidations:  det.Stats.Get("dir.invalidations"),
		Interventions:  det.Stats.Get("dir.interventions"),
		MetadataMsgs:   det.Stats.Get("fs.metadata_messages"),
		PhantomMsgs:    det.Stats.Get("fs.phantom_messages"),
	}
	for _, d := range det.Detections {
		rep.Lines = append(rep.Lines, lineEntry{
			Address: d.Addr.String(), Writers: d.Writers, Readers: d.Readers,
			Episodes: d.Episodes, FirstCycle: d.Cycle,
		})
	}
	for _, d := range det.Contended {
		rep.Contended = append(rep.Contended, lineEntry{
			Address: d.Addr.String(), Writers: d.Writers, Readers: d.Readers,
			Episodes: d.Episodes, FirstCycle: d.Cycle,
		})
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Printf("FSDetect report for %s (%s layout)\n", rep.Benchmark, *variant)
	fmt.Printf("  run length          %d cycles (detection overhead %.2f%%)\n", rep.Cycles, rep.OverheadPct)
	fmt.Printf("  L1D miss fraction   %.2f%%\n", 100*rep.L1MissFraction)
	fmt.Printf("  invalidations       %d, interventions %d\n", rep.Invalidations, rep.Interventions)
	fmt.Printf("  metadata messages   %d (%d phantom)\n", rep.MetadataMsgs, rep.PhantomMsgs)
	if len(rep.Lines) == 0 {
		fmt.Println("\nno harmful false sharing detected")
	} else {
		fmt.Printf("\n%d falsely shared line(s):\n", len(rep.Lines))
		for _, l := range rep.Lines {
			fmt.Printf("  %-12s writers=%v readers=%v episodes=%d first-at=%d\n",
				l.Address, l.Writers, l.Readers, l.Episodes, l.FirstCycle)
		}
	}
	if len(rep.Contended) > 0 {
		fmt.Printf("\n%d contended truly-shared line(s) (§VII — likely synchronization variables):\n", len(rep.Contended))
		for _, l := range rep.Contended {
			fmt.Printf("  %-12s writers=%v readers=%v episodes=%d first-at=%d\n",
				l.Address, l.Writers, l.Readers, l.Episodes, l.FirstCycle)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fsreport:", err)
	os.Exit(1)
}
