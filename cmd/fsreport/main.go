// Command fsreport runs FSDetect on a workload and prints a detailed
// false-sharing report: the detected lines, the cores involved, episode
// counts and the supporting protocol statistics — the "detector as a
// diagnostics tool" use case of §II. The JSON schema includes per-line
// detection timelines and the L1D miss-latency histogram, both sourced from
// the unified observability layer.
//
// Usage:
//
//	fsreport -bench LR
//	fsreport -bench LR -json
//	fsreport -bench LR -trace out.json -metrics out.csv
//	fsreport -bench RC -html report.html
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"fscoherence"
	"fscoherence/internal/obs"
)

func main() {
	var (
		bench    = flag.String("bench", "RC", "benchmark code (fsrun -list shows all)")
		scale    = flag.Float64("scale", 1.0, "workload size multiplier")
		asJSON   = flag.Bool("json", false, "emit machine-readable JSON")
		variant  = flag.String("variant", "default", "default | padded | huron")
		traceOut = flag.String("trace", "", "also write the FSDetect run's Chrome trace-event JSON to this file")
		metrics  = flag.String("metrics", "", "also write the FSDetect run's interval metrics CSV to this file")
		filter   = flag.String("trace-filter", "", "override the trace filter (default: detector events only)")
		htmlOut  = flag.String("html", "", "write a self-contained HTML forensics report (heatmaps, timelines, accuracy) to this file")
		sampled  = flag.String("sample", "", "interval sampling spec detailed:warming in committed accesses (e.g. 50k:950k); incompatible with -trace/-metrics/-html")
	)
	flag.Parse()
	if *sampled != "" {
		// Sampled runs carry no observability: warming commits emit no events.
		switch {
		case *traceOut != "":
			fatal(fmt.Errorf("-sample is incompatible with -trace (warming emits no events)"))
		case *metrics != "":
			fatal(fmt.Errorf("-sample is incompatible with -metrics (warming emits no events)"))
		case *filter != "":
			fatal(fmt.Errorf("-sample is incompatible with -trace-filter (warming emits no events)"))
		case *htmlOut != "":
			fatal(fmt.Errorf("-sample is incompatible with -html (forensics needs the fully-timed run)"))
		}
	}

	v := fscoherence.LayoutDefault
	switch *variant {
	case "padded":
		v = fscoherence.LayoutPadded
	case "huron":
		v = fscoherence.LayoutHuron
	}

	o := detectionObs()
	if *filter != "" {
		f, err := obs.ParseFilter(*filter, fscoherence.DefaultBlockSize())
		if err != nil {
			fatal(err)
		}
		o = obs.New(obs.Config{Filter: f})
	}
	if *sampled != "" {
		o = nil // warming commits emit no events; timelines are omitted
	}

	base, err := fscoherence.Run(*bench, fscoherence.Options{Protocol: fscoherence.Baseline, Variant: v, Scale: *scale, Sample: *sampled})
	if err != nil {
		fatal(err)
	}
	det, err := fscoherence.Run(*bench, fscoherence.Options{Protocol: fscoherence.FSDetect, Variant: v, Scale: *scale, Obs: o, Sample: *sampled})
	if err != nil {
		fatal(err)
	}

	rep := buildReport(*bench, base, det)

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := obs.WriteChromeTrace(f, o.Tracer.Events()); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if *metrics != "" {
		f, err := os.Create(*metrics)
		if err != nil {
			fatal(err)
		}
		if err := o.Metrics.WriteCSV(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}

	if *htmlOut != "" {
		data, err := buildHTMLData(*bench, *variant, v, *scale, rep)
		if err != nil {
			fatal(err)
		}
		f, err := os.Create(*htmlOut)
		if err != nil {
			fatal(err)
		}
		if err := writeHTML(f, data); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "[html report: %d detail lines, %d accuracy rows -> %s]\n",
			len(data.Lines), len(data.Accuracy), *htmlOut)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Printf("FSDetect report for %s (%s layout)\n", rep.Benchmark, *variant)
	if s := rep.Sampled; s != nil {
		cyc := s.Estimates["sim.cycles"]
		fmt.Printf("  run length          %.0f ± %.0f cycles (95%% CI; sampled %s, %d windows, %.2f%% detail; detection overhead %.2f%%)\n",
			cyc.Mean, cyc.CI95, s.Spec, s.Windows, 100*float64(s.Detailed)/float64(s.Accesses), rep.OverheadPct)
	} else {
		fmt.Printf("  run length          %d cycles (detection overhead %.2f%%)\n", rep.Cycles, rep.OverheadPct)
	}
	fmt.Printf("  L1D miss fraction   %.2f%%\n", 100*rep.L1MissFraction)
	fmt.Printf("  invalidations       %d, interventions %d\n", rep.Invalidations, rep.Interventions)
	fmt.Printf("  metadata messages   %d (%d phantom)\n", rep.MetadataMsgs, rep.PhantomMsgs)
	if h := rep.MissLatency; h != nil {
		fmt.Printf("  L1D miss latency    n=%d mean=%.1f min=%d max=%d cycles\n", h.Count, h.Mean, h.Min, h.Max)
	}
	if len(rep.Lines) == 0 {
		fmt.Println("\nno harmful false sharing detected")
	} else {
		fmt.Printf("\n%d falsely shared line(s):\n", len(rep.Lines))
		for _, l := range rep.Lines {
			fmt.Printf("  %-12s writers=%v readers=%v episodes=%d first-at=%d\n",
				l.Address, l.Writers, l.Readers, l.Episodes, l.FirstCycle)
			for _, te := range l.Timeline {
				fmt.Printf("    cycle %-10d %-13s episode %d\n", te.Cycle, te.Event, te.Episode)
			}
		}
	}
	if len(rep.Contended) > 0 {
		fmt.Printf("\n%d contended truly-shared line(s) (§VII — likely synchronization variables):\n", len(rep.Contended))
		for _, l := range rep.Contended {
			fmt.Printf("  %-12s writers=%v readers=%v episodes=%d first-at=%d\n",
				l.Address, l.Writers, l.Readers, l.Episodes, l.FirstCycle)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fsreport:", err)
	os.Exit(1)
}
