package main

import (
	"fscoherence"
	"fscoherence/internal/coherence"
	"fscoherence/internal/memsys"
	"fscoherence/internal/obs"
)

// report is the JSON output schema.
type report struct {
	Benchmark      string      `json:"benchmark"`
	Cycles         uint64      `json:"cycles"`
	OverheadPct    float64     `json:"detection_overhead_pct"`
	L1MissFraction float64     `json:"l1d_miss_fraction"`
	Invalidations  uint64      `json:"invalidations"`
	Interventions  uint64      `json:"interventions"`
	MetadataMsgs   uint64      `json:"metadata_messages"`
	PhantomMsgs    uint64      `json:"phantom_messages"`
	Lines          []lineEntry `json:"falsely_shared_lines"`
	Contended      []lineEntry `json:"contended_lines"`

	// MissLatency is the L1D demand-miss latency distribution recorded by
	// the observability layer (absent when observability was off).
	MissLatency *histogramEntry `json:"miss_latency_histogram,omitempty"`

	// Sampled reports interval-sampling estimation when the run used -sample
	// (timing metrics are then estimates; Cycles holds the rounded mean).
	Sampled *sampledEntry `json:"sampled,omitempty"`
}

// sampledEntry serializes the estimation side of an interval-sampled run.
type sampledEntry struct {
	Spec      string                   `json:"spec"`
	Windows   int                      `json:"windows"`
	Accesses  uint64                   `json:"accesses"`
	Detailed  uint64                   `json:"detailed_accesses"`
	Estimates map[string]estimateEntry `json:"estimates"`
}

type estimateEntry struct {
	Mean     float64 `json:"mean"`
	CI95     float64 `json:"ci95"`
	Coverage float64 `json:"coverage"`
}

type lineEntry struct {
	Address    string `json:"address"`
	Writers    []int  `json:"writers"`
	Readers    []int  `json:"readers"`
	Episodes   int    `json:"episodes"`
	FirstCycle uint64 `json:"first_detected_cycle"`

	// Timeline lists every detection episode for the line in cycle order
	// (from the event tracer; absent when observability was off).
	Timeline []timelineEvent `json:"timeline,omitempty"`
}

// timelineEvent is one detector classification of a line.
type timelineEvent struct {
	Cycle   uint64 `json:"cycle"`
	Event   string `json:"event"` // "fs.detect" or "fs.contended"
	Episode uint64 `json:"episode"`
}

// histogramEntry serializes an obs.Histogram.
type histogramEntry struct {
	Count   uint64        `json:"count"`
	Mean    float64       `json:"mean"`
	Min     uint64        `json:"min"`
	Max     uint64        `json:"max"`
	Buckets []bucketEntry `json:"buckets"`
}

type bucketEntry struct {
	Lo    uint64 `json:"lo"`
	Hi    uint64 `json:"hi"`
	Count uint64 `json:"count"`
}

// detectionObs returns the observability attachment fsreport hands to the
// FSDetect run: the ring buffer keeps only detector classifications (the
// timeline source), while metrics — including the miss-latency histogram —
// are unaffected by the trace filter.
func detectionObs() *obs.Obs {
	return obs.New(obs.Config{
		Filter: obs.Filter{Kinds: obs.Mask(obs.KindDetect, obs.KindContended)},
	})
}

// buildReport assembles the report from the baseline and FSDetect results.
// det.Obs may be nil (timelines and the histogram are then omitted).
func buildReport(bench string, base, det *fscoherence.Result) report {
	rep := report{
		Benchmark:      bench,
		Cycles:         det.Cycles,
		OverheadPct:    100 * (float64(det.Cycles)/float64(base.Cycles) - 1),
		L1MissFraction: det.MissFraction,
		Invalidations:  det.Stats.Get("dir.invalidations"),
		Interventions:  det.Stats.Get("dir.interventions"),
		MetadataMsgs:   det.Stats.Get("fs.metadata_messages"),
		PhantomMsgs:    det.Stats.Get("fs.phantom_messages"),
	}

	timelines := map[memsys.Addr][]timelineEvent{}
	if t := det.Obs.GetTracer(); t != nil {
		for _, e := range t.Events() {
			switch e.Kind {
			case obs.KindDetect, obs.KindContended:
				timelines[e.Addr] = append(timelines[e.Addr], timelineEvent{
					Cycle: e.Cycle, Event: e.Kind.String(), Episode: e.Arg,
				})
			}
		}
	}

	entry := func(d fscoherence.Detection) lineEntry {
		return lineEntry{
			Address: d.Addr.String(), Writers: d.Writers, Readers: d.Readers,
			Episodes: d.Episodes, FirstCycle: d.Cycle,
			Timeline: timelines[d.Addr],
		}
	}
	for _, d := range det.Detections {
		rep.Lines = append(rep.Lines, entry(d))
	}
	for _, d := range det.Contended {
		rep.Contended = append(rep.Contended, entry(d))
	}

	if h := det.Obs.GetMetrics().Hist(coherence.HistMissLatency); h.Count() > 0 {
		he := &histogramEntry{Count: h.Count(), Mean: h.Mean(), Min: h.Min(), Max: h.Max()}
		for _, b := range h.Buckets() {
			he.Buckets = append(he.Buckets, bucketEntry{Lo: b.Lo, Hi: b.Hi, Count: b.Count})
		}
		rep.MissLatency = he
	}

	if s := det.Sampled; s != nil {
		se := &sampledEntry{
			Spec: s.Spec.String(), Windows: s.Windows,
			Accesses: s.Accesses, Detailed: s.Detailed,
			Estimates: make(map[string]estimateEntry, len(s.Estimates)),
		}
		for name, est := range s.Estimates {
			se.Estimates[name] = estimateEntry{Mean: est.Mean, CI95: est.CI95, Coverage: est.Coverage}
		}
		rep.Sampled = se
	}
	return rep
}
