// Command fsspec regenerates the generated region of PROTOCOL.md (§§2–4)
// from the machine-readable protocol tables in internal/coherence/spec.
//
// Usage:
//
//	fsspec -w           rewrite PROTOCOL.md in place (make specdocs)
//	fsspec -check       exit 1 if the committed doc differs (make check)
//	fsspec              print the generated region to stdout
//
// On first run against a document without generated-region markers, -w
// replaces everything from the "## 2. Message table" heading up to (not
// including) the "## 5." heading and brackets it with the markers.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fscoherence/internal/coherence/spec"
)

func regionBounds(doc string) (start, end int, err error) {
	if b := strings.Index(doc, spec.BeginMarker); b >= 0 {
		e := strings.Index(doc, spec.EndMarker)
		if e < b {
			return 0, 0, fmt.Errorf("generated-region markers are malformed (END before BEGIN or missing)")
		}
		return b, e + len(spec.EndMarker), nil
	}
	b := strings.Index(doc, "## 2. Message table")
	e := strings.Index(doc, "## 5.")
	if b < 0 || e < b {
		return 0, 0, fmt.Errorf("PROTOCOL.md has neither markers nor the §2–§5 headings")
	}
	return b, e, nil
}

func regenerate(doc string) (string, error) {
	b, e, err := regionBounds(doc)
	if err != nil {
		return "", err
	}
	region := spec.BeginMarker + "\n\n" + spec.Render() + spec.EndMarker
	suffix := doc[e:]
	if !strings.HasPrefix(suffix, "\n") {
		suffix = "\n\n" + suffix // first run: separate the marker from §5
	}
	return doc[:b] + region + suffix, nil
}

func main() {
	write := flag.Bool("w", false, "rewrite PROTOCOL.md in place")
	check := flag.Bool("check", false, "exit nonzero if PROTOCOL.md is out of date")
	path := flag.String("doc", "PROTOCOL.md", "document to regenerate")
	flag.Parse()

	if !*write && !*check {
		fmt.Print(spec.Render())
		return
	}
	raw, err := os.ReadFile(*path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fsspec:", err)
		os.Exit(1)
	}
	out, err := regenerate(string(raw))
	if err != nil {
		fmt.Fprintln(os.Stderr, "fsspec:", err)
		os.Exit(1)
	}
	if *check {
		if out != string(raw) {
			fmt.Fprintf(os.Stderr, "fsspec: %s is out of date with internal/coherence/spec — run `make specdocs`\n", *path)
			os.Exit(1)
		}
		return
	}
	if out != string(raw) {
		if err := os.WriteFile(*path, []byte(out), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "fsspec:", err)
			os.Exit(1)
		}
	}
}
