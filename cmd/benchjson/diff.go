package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// diffMode compares two snapshot files and fails (exit 1) on regressions
// beyond the threshold. Wall-clock metrics (ns/op and friends) are excluded
// — CI machines are too noisy for them — so the gate tracks the
// deterministic cells: allocs/op, B/op and the custom ReportMetric series
// the figure benchmarks emit (modelled cycles, speedups, hit rates).
//
// Direction: metrics whose name contains "speedup" or ends in "hits" are
// higher-is-better; everything else (allocations, bytes, modelled cycles,
// misses) is lower-is-better. A tracked metric that was zero in the
// baseline and is now nonzero counts as a regression (a zero-alloc path
// started allocating).

// trackedMetric reports whether a metric participates in the regression
// gate, and whether larger values are better.
func trackedMetric(name string) (tracked, higherBetter bool) {
	switch {
	case strings.HasSuffix(name, "ns/op"), strings.HasSuffix(name, "ns/run"),
		strings.Contains(name, "wall"), strings.HasSuffix(name, "/s"):
		// ns/op and per-second rates are wall-clock derived: too noisy on
		// shared CI machines to gate on.
		return false, false
	case strings.Contains(name, "speedup"), strings.HasSuffix(name, "hits"):
		return true, true
	default:
		return true, false
	}
}

// diffRegression is one tracked cell that moved past the threshold.
type diffRegression struct {
	bench, metric string
	old, new      float64
	pct           float64
}

func runDiff(newPath, prevPath string, thresholdPct float64) int {
	newSnap, err := readSnapshot(newPath, "current")
	if err != nil {
		fatal(err)
	}
	prevSnap, err := readSnapshot(prevPath, "baseline")
	if err != nil {
		fatal(err)
	}

	prev := map[string]Bench{}
	for _, b := range prevSnap.Benchmarks {
		prev[b.Pkg+"/"+b.Name] = b
	}

	var regs []diffRegression
	compared, missing := 0, 0
	for _, nb := range newSnap.Benchmarks {
		pb, ok := prev[nb.Pkg+"/"+nb.Name]
		if !ok {
			missing++
			continue
		}
		names := make([]string, 0, len(nb.Metrics))
		for name := range nb.Metrics {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			tracked, higher := trackedMetric(name)
			if !tracked {
				continue
			}
			ov, ok := pb.Metrics[name]
			if !ok {
				continue
			}
			nv := nb.Metrics[name]
			compared++
			var worsePct float64
			switch {
			case ov == nv:
				continue
			case ov == 0:
				// A zero baseline that went nonzero in a lower-is-better
				// metric is a regression of unbounded relative size.
				if higher || nv == 0 {
					continue
				}
				worsePct = 100
			case higher:
				worsePct = 100 * (ov - nv) / ov
			default:
				worsePct = 100 * (nv - ov) / ov
			}
			if worsePct > thresholdPct {
				regs = append(regs, diffRegression{nb.Name, name, ov, nv, worsePct})
			}
		}
	}

	fmt.Printf("benchjson diff: %s vs %s — %d tracked cells compared", newPath, prevPath, compared)
	if missing > 0 {
		fmt.Printf(" (%d new benchmarks without a baseline)", missing)
	}
	fmt.Println()
	if len(regs) == 0 {
		fmt.Printf("no regression beyond %.0f%%\n", thresholdPct)
		return 0
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i].pct > regs[j].pct })
	for _, r := range regs {
		fmt.Printf("REGRESSION %-40s %-24s %g -> %g (%.1f%% worse)\n", r.bench, r.metric, r.old, r.new, r.pct)
	}
	fmt.Printf("%d regression(s) beyond %.0f%%\n", len(regs), thresholdPct)
	return 1
}

// readSnapshot loads one snapshot for -diff, turning the three common
// failure modes — file missing, file unparseable, file empty — into errors
// that say exactly how to fix them. role names the snapshot's side of the
// comparison ("current" or "baseline") so the message points at the right
// file.
func readSnapshot(path, role string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%s snapshot %s does not exist\n\n"+
				"Capture it first:\n\n"+
				"\tgo test -bench . -benchmem -benchtime=1x -run '^$' ./... | go run ./cmd/benchjson -out %s\n\n"+
				"(`make bench` does this for the current snapshot; the baseline is the\n"+
				"previous BENCH_*.json checked into the repo root.)", role, path, path)
		}
		return nil, fmt.Errorf("%s snapshot %s unreadable: %w", role, path, err)
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s snapshot %s is not a benchjson snapshot: %v\n\n"+
			"The file must be benchjson's JSON output, not raw `go test -bench` text;\n"+
			"regenerate it with:\n\n"+
			"\tgo test -bench . -benchmem -benchtime=1x -run '^$' ./... | go run ./cmd/benchjson -out %s",
			role, path, err, path)
	}
	if len(s.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s snapshot %s parses but contains no benchmarks; "+
			"regenerate it with `make bench` (a truncated or hand-edited file?)", role, path)
	}
	return &s, nil
}
