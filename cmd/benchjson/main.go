// Command benchjson converts `go test -bench` output read from stdin into a
// JSON snapshot (see `make bench`, which writes BENCH_3.json). Every
// benchmark line is captured with its full metric set — ns/op, B/op,
// allocs/op and any custom ReportMetric series (the figure benchmarks emit
// their headline numbers, e.g. fslite-geomean-speedup, this way) — so future
// changes can diff both wall-clock and modelled results against a checked-in
// baseline.
//
// Usage:
//
//	go test -bench . -benchmem -run '^$' ./... | benchjson -out BENCH_3.json
//
// With -diff it compares two snapshots instead and exits 1 when a tracked
// deterministic metric (allocs/op, B/op, custom ReportMetric series — not
// wall-clock ns/op) regressed beyond -threshold percent:
//
//	benchjson -diff BENCH_5.json -prev BENCH_4.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Snapshot is the file layout of BENCH_3.json.
type Snapshot struct {
	Note       string  `json:"note"`
	GoVersion  string  `json:"go"`
	GOOS       string  `json:"goos,omitempty"`
	GOARCH     string  `json:"goarch,omitempty"`
	CPU        string  `json:"cpu,omitempty"`
	Benchmarks []Bench `json:"benchmarks"`
}

// Bench is one parsed benchmark result line.
type Bench struct {
	Name       string             `json:"name"`
	Pkg        string             `json:"pkg,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	note := flag.String("note", "captured by make bench (-benchtime=1x)", "free-form provenance note")
	diff := flag.String("diff", "", "compare this snapshot file against -prev instead of reading stdin")
	prev := flag.String("prev", "", "baseline snapshot file for -diff")
	threshold := flag.Float64("threshold", 15, "regression threshold in percent for -diff")
	flag.Parse()

	if *diff != "" {
		if *prev == "" {
			fatal(fmt.Errorf("-diff requires -prev BASELINE.json"))
		}
		os.Exit(runDiff(*diff, *prev, *threshold))
	}

	snap := Snapshot{Note: *note, GoVersion: runtime.Version()}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(os.Stderr, line) // passthrough so the run stays visible
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "goos:":
			snap.GOOS = strings.Join(fields[1:], " ")
			continue
		case "goarch:":
			snap.GOARCH = strings.Join(fields[1:], " ")
			continue
		case "cpu:":
			snap.CPU = strings.Join(fields[1:], " ")
			continue
		case "pkg:":
			pkg = strings.Join(fields[1:], " ")
			continue
		}
		if !strings.HasPrefix(fields[0], "Benchmark") || len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // PASS/FAIL summaries and other non-result lines
		}
		b := Bench{Name: fields[0], Pkg: pkg, Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break // malformed tail; keep what parsed
			}
			b.Metrics[fields[i+1]] = v
		}
		snap.Benchmarks = append(snap.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(snap.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark result lines found on stdin"))
	}

	buf, err := json.MarshalIndent(&snap, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(snap.Benchmarks), *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
