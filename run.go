package fscoherence

import (
	"fmt"

	"fscoherence/internal/coherence"
	"fscoherence/internal/core"
	"fscoherence/internal/energy"
	"fscoherence/internal/forensics"
	"fscoherence/internal/memsys"
	"fscoherence/internal/network"
	"fscoherence/internal/obs"
	"fscoherence/internal/sample"
	"fscoherence/internal/sim"
	"fscoherence/internal/stats"
	"fscoherence/internal/workload"
)

// Protocol selects the coherence protocol for a run.
type Protocol = coherence.Protocol

// Re-exported protocol constants.
const (
	Baseline = coherence.Baseline
	FSDetect = coherence.FSDetect
	FSLite   = coherence.FSLite
	Hybrid   = coherence.Hybrid
)

// Variant selects the workload data layout.
type Variant = workload.Variant

// Re-exported layout variants.
const (
	LayoutDefault = workload.VariantDefault
	LayoutPadded  = workload.VariantPadded
	LayoutHuron   = workload.VariantHuron
)

// Detection re-exports the FSDetect report entry.
type Detection = core.Detection

// DefaultBlockSize returns the simulated cache-line size in bytes (Table II),
// the granularity at which trace filters match addresses.
func DefaultBlockSize() int { return coherence.DefaultParams().BlockSize }

// Options configures a single run. The zero value runs the baseline
// protocol on the default layout at scale 1 with the Table II system.
type Options struct {
	Protocol Protocol
	Variant  Variant

	// Scale multiplies the workload size (1.0 = calibrated default).
	Scale float64

	// L1KB overrides the per-core L1D capacity in KB (default 32;
	// §VIII-B studies use 128 and 512).
	L1KB int

	// L2KB enables a private mid-level cache of the given capacity per core
	// (§VII three-level hierarchy; 0 = two-level).
	L2KB int

	// NonInclusiveLLC decouples the sparse directory from the LLC data
	// array (§VII): directory entries track twice as many blocks as the
	// data array holds.
	NonInclusiveLLC bool

	// TauP overrides the privatization threshold (default 16, Fig. 16
	// studies 32 and 64).
	TauP uint32

	// SAMEntries overrides the per-slice SAM table capacity (default 128).
	SAMEntries int

	// Granularity overrides the metadata tracking grain in bytes
	// (default 1; §VIII-B studies 2 and 4).
	Granularity int

	// ReaderOpt enables the §VI last-reader+overflow SAM optimization.
	ReaderOpt bool

	// OOO selects the 8-wide out-of-order core model (§VIII-B).
	OOO bool

	// Verify enables the golden-memory oracle and SWMR invariant scanning
	// (slower; used by tests).
	Verify bool

	// MaxCycles bounds the run (0 = default guard).
	MaxCycles uint64

	// Engine selects the simulation loop: "" or "skip" for the quiescence-
	// skipping engine (the default), "naive" for the cycle-stepped reference
	// loop, "parallel" for the conservative parallel engine (shards the
	// machine across OS threads; falls back to skip for configurations it
	// cannot shard — fault plans, observability, oracles). All three are
	// cycle-exact and produce byte-identical results.
	Engine string

	// Cores scales the machine to an n-core big-machine configuration
	// (power of two up to 256; 0 = the Table II 8-core default). Slice
	// count and LLC capacity scale with it (see coherence.ScaleToCores).
	// Machine-scalable workloads populate every core; fixed-shape ones
	// keep their calibrated thread count.
	Cores int

	// Topology selects the interconnect: "" or "flat" for the paper's
	// fixed-latency fabric, "ring" or "mesh" for an on-chip network with
	// per-hop latency and link contention.
	Topology string

	// Shards overrides the parallel engine's worker count (0 = one shard
	// per 8 cores). Ignored by the sequential engines.
	Shards int

	// Obs attaches the unified observability layer (event tracing and
	// interval metrics) to the run. Options stays comparable — the pointer
	// participates in Runner memo keys, so two cells tracing into distinct
	// attachments are distinct cells.
	Obs *obs.Obs

	// Forensics attaches the per-line flight recorder (byte×core heatmaps,
	// decision timelines, repair-efficacy attribution; see
	// internal/forensics). Nil — the default — disables it at zero cost.
	// Like Obs, the pointer keeps Options comparable.
	Forensics *forensics.Recorder

	// Sample enables SMARTS-style interval sampling as a "detailed:warming"
	// spec in committed accesses, e.g. "50k:950k" (see internal/sample).
	// Detailed windows run the full timed engine; warming windows apply every
	// architectural state change — caches, directory, PAM/SAM, memory values —
	// with no timing, keeping detection and repair state warm. Timing-domain
	// metrics come back as estimates with confidence intervals
	// (Result.Sampled); all other counters are exact. Sampling requires the
	// default machine shape: skip engine, in-order cores, two-level inclusive
	// hierarchy, no Verify/Obs/Forensics attachments.
	Sample string

	// SwitchDispatch routes coherence messages through the retained
	// hand-written switch instead of the spec-table interpreter
	// (internal/coherence/dispatch.go). The two are byte-identical
	// (`make equiv`); the flag exists for that proof.
	SwitchDispatch bool
}

// Result summarizes one run.
type Result struct {
	Benchmark string
	Protocol  Protocol
	Variant   Variant

	Cycles uint64
	Stats  *stats.Set

	// MissFraction is the fraction of L1D accesses that missed (Fig. 13).
	MissFraction float64

	// Energy is the modelled cache-hierarchy energy (arbitrary units;
	// meaningful as a ratio between runs — Fig. 14b/15).
	Energy float64

	// Detections is FSDetect's report of falsely shared lines.
	Detections []Detection

	// Contended is FSDetect's report of contended truly-shared lines
	// (typically synchronization variables) — the §VII extension.
	Contended []Detection

	// Violations holds oracle/SWMR failures when Verify was set.
	Violations []string

	// Obs is the observability attachment the run wrote into (copied from
	// Options.Obs; nil when observability was off).
	Obs *obs.Obs

	// Forensics is the flight recorder the run wrote into (copied from
	// Options.Forensics; nil when forensics was off).
	Forensics *forensics.Recorder

	// GroundTruth labels every line the workload allocated as falsely
	// shared, truly shared or private by construction. Always populated;
	// with Forensics attached, forensics.Score(Forensics, GroundTruth)
	// yields the run's detection precision/recall.
	GroundTruth *forensics.GroundTruth

	// Sampled carries the estimation report of an interval-sampled run
	// (Options.Sample): per-metric estimates with 95% confidence intervals,
	// window counts and detail coverage. Nil for fully-timed runs.
	Sampled *SampledRun

	// Warnings reports non-fatal degradations of a crash-resilient run
	// (RunControlled): an engine fallback for checkpointing, or a rejected
	// checkpoint that forced a cold start.
	Warnings []string
}

// SampledRun re-exports the sampling estimation report.
type SampledRun = sim.SampledRun

// Estimate re-exports the sampled-metric estimate (mean, CI95, coverage).
type Estimate = stats.Estimate

// MetricSummary implements runner.MetricSummarizer: headline per-run metrics
// the sweep engine folds into its Report. Peak-suffixed entries merge by max
// across cells, the rest sum.
func (r *Result) MetricSummary() map[string]uint64 {
	m := map[string]uint64{
		"runs":                          1,
		"cycles":                        r.Cycles,
		"detections":                    uint64(len(r.Detections)),
		"contended":                     uint64(len(r.Contended)),
		"cycles.max" + stats.PeakSuffix: r.Cycles,
	}
	if s := r.Sampled; s != nil {
		m["sampled.cells"] = 1
		m["sampled.windows"] = uint64(s.Windows)
		m["sampled.accesses"] = s.Accesses
		m["sampled.detailed"] = s.Detailed
	}
	if t := r.Obs.GetTracer(); t != nil {
		m["trace.events"] = t.Total()
		m["trace.dropped"] = t.Dropped()
	}
	for _, h := range r.Obs.GetMetrics().Histograms() {
		m["hist."+h.Name+".n"] = h.Count()
		m["hist."+h.Name+".sum"] = h.Sum()
		m["hist."+h.Name+".max"+stats.PeakSuffix] = h.Max()
	}
	return m
}

// Speedup returns base.Cycles / r.Cycles: how much faster r is than base.
func (r *Result) Speedup(base *Result) float64 {
	return float64(base.Cycles) / float64(r.Cycles)
}

// NormalizedEnergy returns r.Energy / base.Energy.
func (r *Result) NormalizedEnergy(base *Result) float64 {
	return r.Energy / base.Energy
}

// validateMachine rejects unsupported machine-shape options with an error,
// so the CLIs report bad -engine/-topology/-cores values cleanly instead of
// panicking (buildConfig's panics remain as backstops for callers that
// bypass Run).
func validateMachine(opt Options) error {
	switch opt.Engine {
	case "", "skip", "naive", "parallel":
	default:
		return fmt.Errorf("unknown engine %q (want \"skip\", \"naive\" or \"parallel\")", opt.Engine)
	}
	if _, err := network.ParseTopoKind(opt.Topology); err != nil {
		return err
	}
	if c := opt.Cores; c != 0 && (c < 1 || c > memsys.MaxCores || c&(c-1) != 0) {
		return fmt.Errorf("unsupported core count %d (want a power of two up to %d)", c, memsys.MaxCores)
	}
	if opt.Sample != "" {
		if _, err := sample.ParseSpec(opt.Sample); err != nil {
			return err
		}
		// The warming fast path models exactly the default machine: in-order
		// cores over a two-level inclusive hierarchy with no observers. Reject
		// everything else up front with a useful message.
		switch {
		case opt.Engine != "" && opt.Engine != "skip":
			return fmt.Errorf("-sample requires the skip engine, not %q", opt.Engine)
		case opt.OOO:
			return fmt.Errorf("-sample supports only the in-order core model")
		case opt.Verify:
			return fmt.Errorf("-sample is incompatible with -verify: warming commits bypass the golden-memory oracle")
		case opt.Obs != nil:
			return fmt.Errorf("-sample is incompatible with observability attachments: warming commits emit no events")
		case opt.Forensics != nil:
			return fmt.Errorf("-sample is incompatible with forensics recording: warming commits emit no events")
		case opt.L2KB > 0:
			return fmt.Errorf("-sample requires the two-level hierarchy (drop -l2kb)")
		case opt.NonInclusiveLLC:
			return fmt.Errorf("-sample requires the inclusive LLC (drop -noninclusive)")
		case opt.Protocol == Hybrid:
			return fmt.Errorf("-sample does not support the hybrid backend (Upd pushes have no warming fast path)")
		}
	}
	return nil
}

// buildConfig translates Options into the simulator configuration.
func buildConfig(opt Options) sim.Config {
	cfg := sim.DefaultConfig(opt.Protocol)
	if opt.L1KB > 0 {
		cfg.Params.L1Entries = opt.L1KB * 1024 / cfg.Params.BlockSize
	}
	if opt.L2KB > 0 {
		cfg.Params.L2Entries = opt.L2KB * 1024 / cfg.Params.BlockSize
		cfg.Params.L2Ways = 8
		cfg.Params.L2HitCycles = 12
	}
	if opt.NonInclusiveLLC {
		cfg.Params.NonInclusiveLLC = true
	}
	if opt.TauP > 0 {
		cfg.Core.TauP = opt.TauP
		cfg.Core.TauR1 = opt.TauP
	}
	if opt.SAMEntries > 0 {
		cfg.Core.SAMEntries = opt.SAMEntries
	}
	if opt.Granularity > 0 {
		cfg.Core.Granularity = opt.Granularity
	}
	cfg.Core.ReaderOpt = opt.ReaderOpt
	if opt.OOO {
		cfg.OOO = true
		cfg.MSHRs = 8
	}
	cfg.CheckOracle = opt.Verify
	cfg.CheckSWMR = opt.Verify
	if opt.MaxCycles > 0 {
		cfg.MaxCycles = opt.MaxCycles
	}
	switch opt.Engine {
	case "", "skip":
		cfg.Engine = sim.EngineSkip
	case "naive":
		cfg.Engine = sim.EngineNaive
	case "parallel":
		cfg.Engine = sim.EngineParallel
	default:
		panic(fmt.Sprintf("fscoherence: unknown engine %q (want \"skip\", \"naive\" or \"parallel\")", opt.Engine))
	}
	if opt.Cores > 0 {
		cfg.Params = cfg.Params.ScaleToCores(opt.Cores)
	}
	kind, err := network.ParseTopoKind(opt.Topology)
	if err != nil {
		panic(fmt.Sprintf("fscoherence: %v", err))
	}
	cfg.Params.Topology = kind
	cfg.Params.SwitchDispatch = opt.SwitchDispatch
	cfg.Shards = opt.Shards
	cfg.Obs = opt.Obs
	cfg.Forensics = opt.Forensics
	if opt.Sample != "" {
		spec, err := sample.ParseSpec(opt.Sample)
		if err != nil {
			panic(fmt.Sprintf("fscoherence: %v", err))
		}
		cfg.Sample = spec
	}
	return cfg
}

// Run executes benchmark bench (a workload code such as "RC"; see
// Benchmarks) under the given options.
//
// Run is a pure function of (bench, opt) and is safe to call from many
// goroutines at once: every call assembles a fresh sim.System with its own
// stats.Set, memory image, controllers and thread closures, and no package
// in the simulator keeps mutable global state (workload models draw from
// per-closure PRNG streams seeded by construction, never from math/rand's
// global source). The Runner engine relies on both properties for its
// memoization and parallel fan-out; `go test -race ./...` guards them.
func Run(bench string, opt Options) (*Result, error) {
	return RunControlled(bench, opt, RunControl{})
}

// assembleResult folds a finished simulation into the public Result (shared
// by Run and RunControlled).
func assembleResult(bench string, opt Options, gt *forensics.GroundTruth, res *sim.Result) *Result {
	out := &Result{
		Benchmark:    bench,
		Protocol:     opt.Protocol,
		Variant:      opt.Variant,
		Cycles:       res.Cycles,
		Stats:        res.Stats,
		MissFraction: res.Stats.Ratio(stats.CtrL1DMisses, stats.CtrL1DAccesses),
		Detections:   res.Detections,
		Contended:    res.Contended,
		Obs:          opt.Obs,
		Forensics:    opt.Forensics,
		GroundTruth:  gt,
		Sampled:      res.Sampled,
	}
	out.Energy = energy.Default().Compute(res.Stats, opt.Protocol != Baseline).Total()
	out.Violations = append(out.Violations, res.OracleViolations...)
	out.Violations = append(out.Violations, res.SWMRViolations...)
	return out
}

// BenchmarkInfo describes a registered workload model (Table III).
type BenchmarkInfo struct {
	Name         string
	Full         string
	Suite        string
	FalseSharing bool
	Threads      int
}

// Benchmarks lists all registered workload models.
func Benchmarks() []BenchmarkInfo {
	var out []BenchmarkInfo
	for _, n := range workload.Names() {
		s, _ := workload.ByName(n)
		out = append(out, BenchmarkInfo{
			Name: s.Name, Full: s.Full, Suite: s.Suite,
			FalseSharing: s.FalseSharing, Threads: s.Threads,
		})
	}
	return out
}

// FalseSharingBenchmarks returns the paper's Fig. 2/13/14 set.
func FalseSharingBenchmarks() []string { return workload.FalseSharingSet() }

// NoFalseSharingBenchmarks returns the paper's Fig. 15 set.
func NoFalseSharingBenchmarks() []string { return workload.NoFalseSharingSet() }

// HuronBenchmarks returns the paper's Fig. 17 comparison set.
func HuronBenchmarks() []string { return workload.HuronSet() }
