package fscoherence

import (
	"strings"
	"testing"
)

// testScale keeps API-level tests fast while preserving behaviour.
const testScale = 0.25

func TestRunUnknownBenchmark(t *testing.T) {
	if _, err := Run("NOPE", Options{}); err == nil {
		t.Fatal("unknown benchmark must error")
	}
}

func TestRunRejectsBadMachineOptions(t *testing.T) {
	for _, opt := range []Options{
		{Engine: "bogus"},
		{Topology: "torus"},
		{Cores: 100},
		{Cores: -8},
		{Cores: 512},
	} {
		if _, err := Run("RC", opt); err == nil {
			t.Errorf("Run(RC, %+v) must error", opt)
		}
	}
	// Boundary shapes stay legal.
	for _, opt := range []Options{
		{Cores: 8, Topology: "flat", Scale: 0.05},
		{Cores: 16, Topology: "ring", Engine: "parallel", Scale: 0.05},
	} {
		if _, err := Run("uWW", opt); err != nil {
			t.Errorf("Run(uWW, %+v): %v", opt, err)
		}
	}
}

func TestRunProducesConsistentResult(t *testing.T) {
	r, err := Run("RC", Options{Protocol: Baseline, Scale: testScale})
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles == 0 || r.Benchmark != "RC" || r.Protocol != Baseline {
		t.Fatalf("result malformed: %+v", r)
	}
	if r.MissFraction <= 0 || r.MissFraction >= 1 {
		t.Fatalf("miss fraction %v out of range", r.MissFraction)
	}
	if r.Energy <= 0 {
		t.Fatal("energy not computed")
	}
}

func TestRunIsDeterministic(t *testing.T) {
	a, err := Run("LT", Options{Protocol: FSLite, Scale: testScale})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("LT", Options{Protocol: FSLite, Scale: testScale})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles {
		t.Fatalf("nondeterministic: %d vs %d cycles", a.Cycles, b.Cycles)
	}
	if a.Stats.Get("net.messages") != b.Stats.Get("net.messages") {
		t.Fatal("nondeterministic message counts")
	}
}

func TestFSLiteBeatsBaselineOnRC(t *testing.T) {
	base, err := Run("RC", Options{Protocol: Baseline, Scale: testScale})
	if err != nil {
		t.Fatal(err)
	}
	fsl, err := Run("RC", Options{Protocol: FSLite, Scale: testScale})
	if err != nil {
		t.Fatal(err)
	}
	if s := fsl.Speedup(base); s < 2 {
		t.Fatalf("RC FSLite speedup = %.2f, want > 2", s)
	}
	if e := fsl.NormalizedEnergy(base); e > 0.6 {
		t.Fatalf("RC FSLite energy = %.2f, want < 0.6", e)
	}
}

func TestFSDetectReportsRC(t *testing.T) {
	r, err := Run("RC", Options{Protocol: FSDetect, Scale: testScale})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Detections) == 0 {
		t.Fatal("FSDetect found nothing on RC")
	}
	d := r.Detections[0]
	if len(d.Writers) < 2 {
		t.Fatalf("detection writers = %v", d.Writers)
	}
}

func TestMicroTrueSharingCleanReport(t *testing.T) {
	r, err := Run("uTS", Options{Protocol: FSDetect, Scale: testScale})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Detections) != 0 {
		t.Fatalf("true-sharing micro flagged: %+v", r.Detections)
	}
}

func TestMicroPhasedGetsPrivatized(t *testing.T) {
	r, err := Run("uPH", Options{Protocol: FSLite, Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.Get("fs.privatizations") == 0 {
		t.Fatal("the §VI metadata reset should enable privatizing the phased block")
	}
}

func TestVerifiedRunsAllBenchmarks(t *testing.T) {
	// Every benchmark under every protocol with the oracle and SWMR checks
	// on: the definitive correctness sweep of the workload models.
	if testing.Short() {
		t.Skip("full verification sweep")
	}
	for _, b := range Benchmarks() {
		for _, p := range []Protocol{Baseline, FSDetect, FSLite} {
			r, err := Run(b.Name, Options{Protocol: p, Scale: 0.1, Verify: true})
			if err != nil {
				t.Fatalf("%s/%v: %v", b.Name, p, err)
			}
			if len(r.Violations) > 0 {
				t.Fatalf("%s/%v: %s", b.Name, p, strings.Join(r.Violations[:1], ""))
			}
		}
	}
}

func TestOptionVariantsRunClean(t *testing.T) {
	opts := []Options{
		{Protocol: FSLite, TauP: 32, Scale: testScale},
		{Protocol: FSLite, SAMEntries: 64, Scale: testScale},
		{Protocol: FSLite, Granularity: 4, Scale: testScale},
		{Protocol: FSLite, ReaderOpt: true, Scale: testScale},
		{Protocol: Baseline, L1KB: 128, Scale: testScale},
		{Protocol: FSLite, OOO: true, Scale: testScale, Verify: true},
		{Protocol: FSLite, Variant: LayoutPadded, Scale: testScale},
		{Protocol: FSLite, Variant: LayoutHuron, Scale: testScale},
	}
	for i, o := range opts {
		r, err := Run("LL", o)
		if err != nil {
			t.Fatalf("option set %d: %v", i, err)
		}
		if len(r.Violations) > 0 {
			t.Fatalf("option set %d: %v", i, r.Violations[0])
		}
	}
}

func TestReaderOptSamePrivatizations(t *testing.T) {
	full, err := Run("RC", Options{Protocol: FSLite, Scale: testScale})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Run("RC", Options{Protocol: FSLite, ReaderOpt: true, Scale: testScale})
	if err != nil {
		t.Fatal(err)
	}
	if full.Stats.Get("fs.privatizations") != opt.Stats.Get("fs.privatizations") {
		t.Fatalf("reader opt changed privatizations: %d vs %d",
			full.Stats.Get("fs.privatizations"), opt.Stats.Get("fs.privatizations"))
	}
}

func TestBenchmarkListings(t *testing.T) {
	if len(Benchmarks()) < 14 {
		t.Fatal("benchmark listing incomplete")
	}
	if len(FalseSharingBenchmarks()) != 8 || len(NoFalseSharingBenchmarks()) != 6 || len(HuronBenchmarks()) != 6 {
		t.Fatal("paper benchmark sets wrong")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{ID: "T", Title: "demo", Columns: []string{"a"},
		Rows:    []TableRow{{Name: "x", Values: map[string]float64{"a": 1.5}}},
		GeoMean: map[string]float64{"a": 1.5}}
	s := tab.String()
	if !strings.Contains(s, "1.500") || !strings.Contains(s, "geomean") {
		t.Fatalf("table render: %s", s)
	}
	md := tab.Markdown()
	if !strings.Contains(md, "| x | 1.500 |") {
		t.Fatalf("markdown render: %s", md)
	}
}

func TestContendedLockLinesReported(t *testing.T) {
	// §VII utility beyond false sharing: a heavily contended truly shared
	// word (the uTS micro hammers one counter from all threads) shows up in
	// the contention report, not the false-sharing report.
	r, err := Run("uTS", Options{Protocol: FSDetect, Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Detections) != 0 {
		t.Fatalf("contended word misreported as false sharing: %+v", r.Detections)
	}
	if len(r.Contended) == 0 {
		t.Fatal("contended word not reported")
	}
	// The contention set (writers plus readers: atomics do both) must
	// implicate multiple cores.
	set := map[int]bool{}
	for _, c := range r.Contended[0].Writers {
		set[c] = true
	}
	for _, c := range r.Contended[0].Readers {
		set[c] = true
	}
	if len(set) < 2 {
		t.Fatalf("contention report should implicate multiple cores: %+v", r.Contended[0])
	}
}

func TestFalseSharingNotReportedAsContended(t *testing.T) {
	r, err := Run("uWW", Options{Protocol: FSDetect, Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Detections) == 0 {
		t.Fatal("false sharing not detected")
	}
	if len(r.Contended) != 0 {
		t.Fatalf("falsely shared line misreported as contention: %+v", r.Contended)
	}
}

func TestThreeLevelHierarchyOption(t *testing.T) {
	base, err := Run("RC", Options{Protocol: Baseline, L2KB: 256, Scale: testScale, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	fsl, err := Run("RC", Options{Protocol: FSLite, L2KB: 256, Scale: testScale, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []*Result{base, fsl} {
		if len(r.Violations) > 0 {
			t.Fatal(r.Violations[0])
		}
	}
	if s := fsl.Speedup(base); s < 2 {
		t.Fatalf("FSLite with L2 speedup = %.2f", s)
	}
}

func TestReductionRegionExtension(t *testing.T) {
	// §VII parallel reductions: with the region declared, FSLite privatizes
	// lines whose words are written by EVERY core and merges by summing.
	// The golden-memory oracle validates the final sums (the workload's
	// closing loads force the merge).
	fsl, err := Run("uRED", Options{Protocol: FSLite, Scale: 1, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(fsl.Violations) > 0 {
		t.Fatalf("reduction merge broke coherence: %s", fsl.Violations[0])
	}
	if fsl.Stats.Get("fs.privatizations") == 0 {
		t.Fatal("reduction region was never privatized")
	}
	// The same access pattern under the baseline ping-pongs the line; the
	// reduction privatization must win big.
	base, err := Run("uRED", Options{Protocol: Baseline, Scale: 1, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Violations) > 0 {
		t.Fatalf("baseline reduction run broke coherence: %s", base.Violations[0])
	}
	if s := fsl.Speedup(base); s < 1.5 {
		t.Fatalf("reduction privatization speedup = %.2f, want > 1.5", s)
	}
	t.Logf("reduction speedup %.2fx (baseline %d cycles, fslite %d cycles)",
		fsl.Speedup(base), base.Cycles, fsl.Cycles)
}

func TestNonInclusiveOption(t *testing.T) {
	r, err := Run("RC", Options{Protocol: FSLite, NonInclusiveLLC: true, Scale: testScale, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Violations) > 0 {
		t.Fatal(r.Violations[0])
	}
	if r.Stats.Get("fs.privatizations") == 0 {
		t.Fatal("no privatization under the sparse directory")
	}
}

func TestCSVRendering(t *testing.T) {
	tab := &Table{ID: "T", Title: "demo", Columns: []string{"a", "b"},
		Rows:    []TableRow{{Name: "x", Values: map[string]float64{"a": 1.5, "b": 2}}},
		GeoMean: map[string]float64{"a": 1.5}}
	csv := tab.CSV()
	want := "benchmark,a,b\nx,1.500000,2.000000\ngeomean,1.500000,\n"
	if csv != want {
		t.Fatalf("csv = %q, want %q", csv, want)
	}
}

func TestReductionRunDeterministic(t *testing.T) {
	a, err := Run("uRED", Options{Protocol: FSLite, Scale: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("uRED", Options{Protocol: FSLite, Scale: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles {
		t.Fatalf("nondeterministic reduction run: %d vs %d", a.Cycles, b.Cycles)
	}
}
